#include "multi_tenant_service.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace morphling::service {

namespace {

/** Tenant names embed into metric names; keep them to the safe
 *  alphabet (the Prometheus exporter maps '.' to '_', everything
 *  else must already be legal). */
std::string
sanitized(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            c = '_';
    }
    return out;
}

void
validateQuota(const TenantQuota &quota)
{
    if (quota.ratePerSec < 0)
        throw std::invalid_argument(
            "TenantQuota::ratePerSec must be non-negative");
    if (quota.ratePerSec > 0 && quota.burst <= 0)
        throw std::invalid_argument(
            "TenantQuota::burst must be positive when a rate is set "
            "(an empty bucket admits nothing, ever)");
    if (quota.weight == 0)
        throw std::invalid_argument(
            "TenantQuota::weight must be >= 1 (it is the tenant's "
            "worker-thread share)");
    if (quota.sloLatencyUs < 0)
        throw std::invalid_argument(
            "TenantQuota::sloLatencyUs must be non-negative");
}

} // namespace

void
MultiTenantService::Tenant::observe(const CompletionInfo &info)
{
    latencyUs->observe(info.latencyUs);
    completed->inc();
    bootstraps->inc(info.bootstraps);
    const double slo = sloLatencyUs.load(std::memory_order_relaxed);
    if (slo > 0 && info.latencyUs > slo)
        sloBreaches->inc();
    if (info.deadlineMissed)
        deadlineMisses->inc();
}

MultiTenantService::MultiTenantService(MultiTenantConfig config)
    : config_(std::move(config)),
      maxLive_(config_.maxLiveServices != 0
                   ? config_.maxLiveServices
                   : std::max<std::size_t>(1, config_.registry
                                                  .maxResident)),
      metrics_(config_.metrics != nullptr
                   ? *config_.metrics
                   : telemetry::MetricsRegistry::instance()),
      registry_(config_.registry, &metrics_)
{
    // The per-tenant services override numWorkers/onComplete, but
    // every other template knob must already be runnable — fail at
    // the front door, not on the first tenant's first submission.
    ServiceConfig probe = config_.service;
    probe.numWorkers = 1;
    probe.onComplete = nullptr;
    if (const auto error = probe.validate())
        throw std::invalid_argument("MultiTenantService: " + *error);
}

MultiTenantService::~MultiTenantService() { shutdown(); }

tfhe::KeyFingerprint
MultiTenantService::addTenant(const TenantId &tenant,
                              const tfhe::EvaluationKeys &keys,
                              TenantQuota quota)
{
    validateQuota(quota);
    const auto fp = registry_.enroll(tenant, keys);

    std::unique_lock<std::mutex> lk(mu_);
    fatal_if(stopped_, "addTenant on a shut-down MultiTenantService");
    auto [it, inserted] = tenants_.try_emplace(tenant);
    if (inserted) {
        auto t = std::make_unique<Tenant>();
        t->name = tenant;
        const std::string prefix = "tenant." + sanitized(tenant) + ".";
        t->submitted = &metrics_.counter(prefix + "submitted",
                                         "submissions forwarded");
        t->throttled = &metrics_.counter(
            prefix + "throttled", "admission-control refusals");
        t->completed = &metrics_.counter(prefix + "completed",
                                         "promises fulfilled");
        t->bootstraps = &metrics_.counter(prefix + "bootstraps",
                                          "bootstraps retired");
        t->sloBreaches = &metrics_.counter(
            prefix + "slo_breaches",
            "completions slower than the tenant SLO");
        t->deadlineMisses = &metrics_.counter(
            prefix + "deadline_misses",
            "requests dispatched past their deadline");
        t->latencyUs = &metrics_.histogram(
            prefix + "latency_us", "submit -> completion latency");
        it->second = std::move(t);
    }
    Tenant &t = *it->second;
    // A live service keeps the keys and worker count it materialized
    // with: a rotated fingerprint or changed weight must drain and
    // tear it down, or submissions would keep evaluating under the
    // rotated-out keys until an incidental LRU eviction.
    const bool refresh = t.service != nullptr &&
                         (t.fp != fp || t.weight != quota.weight);
    t.fp = fp;
    t.weight = quota.weight;
    if (refresh)
        drainAndTeardownLocked(lk, t);
    lk.unlock();

    // Each quota knob is rewritten under the lock (or atomic) its
    // hot-path reader uses — re-adding a tenant under live traffic
    // must not race admitters or completion callbacks.
    {
        std::lock_guard<std::mutex> alk(admitMu_);
        t.ratePerSec = quota.ratePerSec;
        t.burst = quota.burst;
    }
    // Blocked admitters re-derive their wait from the new rate.
    admitCv_.notify_all();
    t.sloLatencyUs.store(quota.sloLatencyUs,
                         std::memory_order_relaxed);
    return fp;
}

MultiTenantService::Tenant &
MultiTenantService::find(const TenantId &tenant)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = tenants_.find(tenant);
    if (it == tenants_.end())
        throw std::out_of_range("MultiTenantService: unknown tenant \"" +
                                tenant + "\"");
    return *it->second;
}

const MultiTenantService::Tenant &
MultiTenantService::find(const TenantId &tenant) const
{
    return const_cast<MultiTenantService *>(this)->find(tenant);
}

bool
MultiTenantService::admit(Tenant &t, double cost, bool block)
{
    std::unique_lock<std::mutex> lk(admitMu_);
    const auto refill = [&t] {
        const auto now = ServiceClock::now();
        if (!t.primed) {
            t.primed = true;
            t.tokens = t.burst; // first admission: full bucket
        } else {
            const double dt =
                std::chrono::duration<double>(now - t.lastRefill)
                    .count();
            t.tokens = std::min(t.burst,
                                t.tokens + dt * t.ratePerSec);
        }
        t.lastRefill = now;
    };
    refill();
    while (true) {
        // Re-read the quota every pass: a re-enroll may rewrite it
        // (under admitMu_) while we wait, including disabling
        // throttling outright.
        if (t.ratePerSec <= 0)
            return true;
        // Refill clamps tokens to burst, so a cost above the bucket
        // depth could never be covered by waiting. Admit it once the
        // bucket is full and let the balance go negative — the
        // oversized draw is still paid back at ratePerSec.
        const double need = std::min(cost, t.burst);
        if (t.tokens >= need)
            break;
        if (!block) {
            t.throttled->inc();
            return false;
        }
        fatal_if(stopped_,
                 "submit on a shut-down MultiTenantService");
        // Tokens accrue with wall time only: sleep until the deficit
        // is covered (plus a tick), then re-check.
        const double deficit = need - t.tokens;
        const auto wait = std::chrono::microseconds(
            1 + static_cast<std::int64_t>(
                    1e6 * deficit / t.ratePerSec));
        admitCv_.wait_for(lk, wait);
        refill();
    }
    t.tokens -= cost;
    return true;
}

void
MultiTenantService::reclaimLocked()
{
    while (true) {
        std::size_t live = 0;
        Tenant *victim = nullptr;
        for (auto &[name, t] : tenants_) {
            if (t->service == nullptr)
                continue;
            ++live;
            const bool idle =
                t->inflight.load(std::memory_order_acquire) == 0 &&
                t->service->outstanding() == 0;
            if (idle && (victim == nullptr ||
                         t->lastUsed < victim->lastUsed))
                victim = t.get();
        }
        if (live < maxLive_ || victim == nullptr)
            return; // under capacity, or everyone is draining
        victim->service->shutdown();
        victim->service.reset();
        registry_.release(victim->name);
    }
}

void
MultiTenantService::drainAndTeardownLocked(
    std::unique_lock<std::mutex> &lk, Tenant &t)
{
    // A submitter past materialize() (inflight counted, mu_ released)
    // may still be calling into the service — destroying it under
    // them is a use-after-free. Wait the forwarding window out: the
    // count drops as soon as the inner submit returns, and the
    // service keeps retiring work meanwhile, so even a
    // backpressure-blocked submitter drains.
    while (t.service != nullptr &&
           t.inflight.load(std::memory_order_acquire) != 0) {
        lk.unlock();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        lk.lock();
    }
    if (t.service != nullptr) {
        t.service->shutdown();
        t.service.reset();
        registry_.release(t.name);
    }
}

BootstrapService &
MultiTenantService::materialize(Tenant &t)
{
    std::lock_guard<std::mutex> lk(mu_);
    fatal_if(stopped_, "submit on a shut-down MultiTenantService");
    t.lastUsed = ++useClock_;
    t.inflight.fetch_add(1, std::memory_order_acq_rel);
    if (t.service != nullptr)
        return *t.service;

    reclaimLocked();
    auto keys = registry_.acquire(t.name);
    ServiceConfig cfg = config_.service;
    cfg.numWorkers = std::max(1u, t.weight);
    cfg.onComplete = [tenant = &t](const CompletionInfo &info) {
        tenant->observe(info);
    };
    t.service =
        std::make_unique<BootstrapService>(std::move(keys), cfg);
    // Replay the LUT namespace: ids are assigned sequentially, so a
    // re-materialized service reproduces them exactly.
    for (std::size_t i = 0; i < t.luts.size(); ++i) {
        const auto id = t.service->registerLut(t.luts[i]);
        fatal_if(id != static_cast<LutId>(i),
                 "LUT replay produced id ", id, " for slot ", i);
    }
    return *t.service;
}

LutId
MultiTenantService::registerLut(const TenantId &tenant,
                                std::vector<tfhe::Torus32> lut)
{
    auto &t = find(tenant);
    std::lock_guard<std::mutex> lk(mu_);
    fatal_if(stopped_,
             "registerLut on a shut-down MultiTenantService");
    t.luts.push_back(std::move(lut));
    const auto id = static_cast<LutId>(t.luts.size() - 1);
    if (t.service != nullptr) {
        const auto got = t.service->registerLut(t.luts.back());
        fatal_if(got != id, "live service assigned LUT id ", got,
                 ", front door expected ", id);
    }
    return id;
}

std::future<tfhe::LweCiphertext>
MultiTenantService::submit(
    const TenantId &tenant, tfhe::LweCiphertext ct, LutId lut,
    std::optional<ServiceClock::time_point> deadline)
{
    auto &t = find(tenant);
    admit(t, 1.0, /*block=*/true);
    auto &svc = materialize(t);
    InflightGuard guard(&t);
    t.submitted->inc();
    return svc.submit(std::move(ct), lut, deadline);
}

std::optional<std::future<tfhe::LweCiphertext>>
MultiTenantService::trySubmit(
    const TenantId &tenant, tfhe::LweCiphertext ct, LutId lut,
    std::optional<ServiceClock::time_point> deadline)
{
    auto &t = find(tenant);
    if (!admit(t, 1.0, /*block=*/false))
        return std::nullopt;
    auto &svc = materialize(t);
    InflightGuard guard(&t);
    auto future = svc.trySubmit(std::move(ct), lut, deadline);
    // Only a forwarded request is "submitted"; a saturation bounce is
    // throttling like an empty bucket, and must not skew the
    // per-tenant accounting the SLO and fairness gates read.
    if (future.has_value())
        t.submitted->inc();
    else
        t.throttled->inc();
    return future;
}

std::future<std::vector<tfhe::LweCiphertext>>
MultiTenantService::submitCircuit(
    const TenantId &tenant, circuit::Circuit circuit,
    std::vector<tfhe::LweCiphertext> inputs)
{
    auto &t = find(tenant);
    const auto cost = std::max<std::uint64_t>(
        1, circuit.bootstrapCount());
    admit(t, static_cast<double>(cost), /*block=*/true);
    auto &svc = materialize(t);
    InflightGuard guard(&t);
    t.submitted->inc();
    return svc.submitCircuit(std::move(circuit), std::move(inputs));
}

TenantStats
MultiTenantService::stats(const TenantId &tenant) const
{
    const auto &t = find(tenant);
    TenantStats s;
    s.tenant = t.name;
    s.submitted = t.submitted->value();
    s.throttled = t.throttled->value();
    s.completed = t.completed->value();
    s.bootstraps = t.bootstraps->value();
    s.sloBreaches = t.sloBreaches->value();
    s.deadlineMisses = t.deadlineMisses->value();
    s.meanLatencyUs = t.latencyUs->mean();
    s.p50LatencyUs = histogramQuantile(*t.latencyUs, 0.50);
    s.p99LatencyUs = histogramQuantile(*t.latencyUs, 0.99);
    {
        std::lock_guard<std::mutex> lk(mu_);
        s.resident = t.service != nullptr;
    }
    return s;
}

std::optional<ServiceStats>
MultiTenantService::serviceStats(const TenantId &tenant) const
{
    const auto &t = find(tenant);
    std::lock_guard<std::mutex> lk(mu_);
    if (t.service == nullptr)
        return std::nullopt;
    return t.service->stats();
}

std::vector<TenantId>
MultiTenantService::tenants() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<TenantId> names;
    names.reserve(tenants_.size());
    for (const auto &[name, t] : tenants_)
        names.push_back(name);
    return names;
}

void
MultiTenantService::flush()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &[name, t] : tenants_) {
        if (t->service != nullptr)
            t->service->flush();
    }
}

void
MultiTenantService::shutdown()
{
    std::unique_lock<std::mutex> lk(mu_);
    if (stopped_)
        return;
    stopped_ = true;
    {
        // Wake blocked admitters; they fatal() on the stopped flag,
        // matching BootstrapService's submit-after-shutdown contract.
        std::lock_guard<std::mutex> alk(admitMu_);
        admitCv_.notify_all();
    }
    // stopped_ keeps new submitters out of materialize(); draining
    // each tenant's inflight count before destroying its service
    // closes the race with one already past it (the same discipline
    // reclaimLocked applies by only ever picking idle victims).
    for (auto &[name, t] : tenants_)
        drainAndTeardownLocked(lk, *t);
}

} // namespace morphling::service
