/**
 * @file
 * Per-tenant service-level accounting: admission quota knobs, the
 * point-in-time statistics snapshot a tenant front door reports, and
 * quantile estimation over the telemetry histograms that back it.
 *
 * Latency distributions live in telemetry::Histogram (log-bucketed,
 * lock-free, scrapeable), not sim::Histogram — the tenant layer needs
 * p50/p99 for SLO reporting, which the power-of-two buckets estimate
 * to within one bucket boundary (docs/service.md).
 */

#ifndef MORPHLING_SERVICE_TENANT_STATS_H
#define MORPHLING_SERVICE_TENANT_STATS_H

#include <algorithm>
#include <cstdint>
#include <string>

#include "telemetry/metrics.h"

namespace morphling::service {

/** Tenants are named; the name keys the registry, the quota table and
 *  every exported per-tenant metric. */
using TenantId = std::string;

/**
 * Admission and scheduling quota of one tenant. The token bucket is
 * denominated in bootstraps (a circuit draws its bootstrapCount() at
 * once), so one flooding tenant exhausts its own bucket instead of the
 * shared maxOutstanding bound — the trickle tenant next to it keeps
 * its own refill rate regardless.
 */
struct TenantQuota
{
    /** Sustained admission rate in bootstraps per second;
     *  0 disables throttling for this tenant. */
    double ratePerSec = 0;

    /** Token-bucket depth in bootstraps: the burst admitted at full
     *  rate before the bucket must refill. */
    double burst = 128;

    /** Dedicated worker threads of this tenant's service (>= 1): the
     *  per-tenant share of execution capacity. */
    unsigned weight = 1;

    /** Request-latency objective in microseconds; completions slower
     *  than this bump TenantStats::sloBreaches. 0 disables tracking. */
    double sloLatencyUs = 0;
};

/** A consistent snapshot of one tenant's counters (plain value type). */
struct TenantStats
{
    TenantId tenant;

    std::uint64_t submitted = 0;      //!< submissions forwarded
    std::uint64_t throttled = 0;      //!< admission-control refusals
    std::uint64_t completed = 0;      //!< promises fulfilled
    std::uint64_t bootstraps = 0;     //!< bootstraps retired
    std::uint64_t sloBreaches = 0;    //!< completions past sloLatencyUs
    std::uint64_t deadlineMisses = 0; //!< dispatched past a deadline

    double meanLatencyUs = 0;
    double p50LatencyUs = 0; //!< log-bucket estimate (upper bound)
    double p99LatencyUs = 0; //!< log-bucket estimate (upper bound)

    /** True while the tenant holds a live BootstrapService (keys
     *  materialized); false after an idle eviction. */
    bool resident = false;
};

/**
 * Estimate the q-quantile (q in [0, 1]) of a telemetry histogram as
 * the upper bound of the bucket holding the rank-q observation,
 * clamped to the observed maximum. Log buckets make this exact to a
 * factor of two — the right precision for SLO gating, at zero cost on
 * the observe() hot path.
 */
inline double
histogramQuantile(const telemetry::Histogram &h, double q)
{
    const std::uint64_t total = h.count();
    if (total == 0)
        return 0.0;
    const double rank = std::clamp(q, 0.0, 1.0) *
                        static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < telemetry::Histogram::kBuckets; ++i) {
        cumulative += h.bucketCount(i);
        if (static_cast<double>(cumulative) >= rank) {
            return std::min(telemetry::Histogram::bucketUpperBound(i),
                            h.max());
        }
    }
    return h.max();
}

} // namespace morphling::service

#endif // MORPHLING_SERVICE_TENANT_STATS_H
