/**
 * @file
 * The concurrent bootstrap service layer: turns a stream of
 * independent LWE bootstrap requests into the 64-ciphertext
 * superbatches Morphling's scheduler is built around (Figure 6), and
 * runs them on a worker pool over pre-transformed evaluation keys.
 *
 * Request lifecycle (docs/service.md walks through it):
 *
 *   submit()/trySubmit() -> per-LUT pending bucket -> assembler thread
 *   groups compiler::kSuperbatchSize requests sharing a LUT into one
 *   Superbatch (or flushes a partial batch after maxWait, so light
 *   load still makes progress) -> worker pool lowers the batch as a
 *   one-level circuit to a Morphling Program (cached per LUT and batch
 *   size) and executes it through the ServiceConfig::backend execution
 *   backend (docs/execution_model.md) -> each request's std::future is
 *   fulfilled.
 *
 * Whole circuits ride the same pool: submitCircuit() accepts a
 * circuit::Circuit plus its input ciphertexts, a worker lowers it
 * (circuit/lowering.h) and runs the level-ordered Program DAG through
 * an exec::CircuitExecutor over the configured backend
 * (docs/circuit_ir.md). The single-LUT path above *is* the one-level
 * special case of this pipeline — one API, one execution substrate.
 *
 * Backpressure: the number of accepted-but-uncompleted requests is
 * bounded by ServiceConfig::maxOutstanding. submit() blocks for space;
 * trySubmit() fails fast and returns std::nullopt.
 *
 * Shutdown: shutdown() (or the destructor) stops admission, flushes
 * every partial batch, completes every accepted request, and joins all
 * threads. Submitting after shutdown is a fatal() usage error — do not
 * race submitters against shutdown().
 *
 * Thread safety: every public method may be called from any thread.
 * Key material is read-only after construction; each worker drives its
 * own execution backend instance, and the compiled-program cache is the
 * only state batches share.
 */

#ifndef MORPHLING_SERVICE_BOOTSTRAP_SERVICE_H
#define MORPHLING_SERVICE_BOOTSTRAP_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "arch/config.h"
#include "circuit/circuit.h"
#include "circuit/lowering.h"
#include "compiler/sw_scheduler.h"
#include "exec/backend.h"
#include "service/service_stats.h"
#include "tfhe/batch.h"

namespace morphling::service {

/** Handle to a LUT registered with the service. */
using LutId = std::uint32_t;

/** The clock used for deadlines, flush timing and latency stats. */
using ServiceClock = std::chrono::steady_clock;

/** One completed submission, as observed by the worker loop. */
struct CompletionInfo
{
    double latencyUs = 0;         //!< submit -> promise fulfilled
    bool circuit = false;         //!< submitCircuit vs single-LUT
    std::uint64_t bootstraps = 1; //!< admission weight released
    bool deadlineMissed = false;  //!< dispatched past its deadline
};

/**
 * Observer invoked by worker threads for every completed request (and
 * once per completed circuit), after the service's own bookkeeping and
 * before the promise is fulfilled. Must be thread-safe and cheap —
 * it runs on the execution hot path. The tenant front door installs
 * one per tenant to feed SLO histograms (tenant_stats.h).
 */
using CompletionObserver = std::function<void(const CompletionInfo &)>;

/** Configuration of a BootstrapService. */
struct ServiceConfig
{
    /** Requests assembled into one batch; defaults to the paper's
     *  64-LWE superbatch shared with the SW scheduler. */
    unsigned superbatchSize = compiler::kSuperbatchSize;

    /** Worker threads executing batches (0 = hardware concurrency). */
    unsigned numWorkers = 0;

    /** Backpressure bound: accepted-but-uncompleted requests. */
    std::size_t maxOutstanding = 4 * compiler::kSuperbatchSize;

    /** Flush timer: a partial batch ships once its oldest request has
     *  waited this long. */
    std::chrono::microseconds maxWait{2000};

    /** Execution options for one superbatch inside a worker (threads
     *  within the batch, optional noise audit). The default (1 thread
     *  per batch) parallelizes across batches via numWorkers. */
    tfhe::BatchOptions batch;

    /**
     * Which execution backend runs a superbatch's compiled Program.
     * kFunctional is the production path; kShardedFunctional fans each
     * superbatch's group streams out across `numShards` functional
     * workers (exec::ShardedBackend) with bit-identical outputs;
     * kCosim additionally retires the program through the cycle model
     * in lockstep and panics on any divergence (a deep self-check —
     * orders of magnitude slower). kTiming is rejected by validate():
     * it produces no ciphertexts, so the service could never fulfil
     * its promises.
     */
    exec::BackendKind backend = exec::BackendKind::kFunctional;

    /** Shards per superbatch for kShardedFunctional; defaults to the
     *  paper's one-shard-per-group split of the 4-group superbatch. */
    unsigned numShards = compiler::kNumGroups;

    /**
     * Server coordinates and retry policy for kRemote: each worker
     * executes its batches through an exec::RemoteBackend against the
     * exec::RemoteServer at remote.host:remote.port. validate()
     * requires a non-zero port. The service computes the key
     * fingerprint once at construction (when not already supplied),
     * so per-batch backend creation stays cheap.
     */
    exec::RemoteClientConfig remote;

    /** Accelerator geometry for the kCosim timing side. */
    arch::ArchConfig timing;

    /**
     * Directory of the on-disk compiled-Program cache
     * (compiler::ProgramDiskCache). When non-empty, every batch shape
     * the service compiles is persisted there and cold starts load it
     * back instead of re-compiling; corrupt or stale entries fall back
     * to compilation. Empty (the default) keeps the cache in-memory
     * only.
     */
    std::string programCacheDir;

    /** Per-completion observer hook; default none. */
    CompletionObserver onComplete;

    /** First configuration error, or nullopt when the config can run.
     *  The BootstrapService constructor throws std::invalid_argument
     *  with this message instead of aborting the process. */
    std::optional<std::string> validate() const;
};

/**
 * A thread-safe service turning individual bootstrap requests into
 * superbatches executed on a worker pool.
 */
class BootstrapService
{
  public:
    /** Serve with evaluation keys only (the deployment-split server
     *  needs no secret material). Throws std::invalid_argument when
     *  ServiceConfig::validate() rejects the configuration. */
    explicit BootstrapService(tfhe::EvaluationKeys keys,
                              ServiceConfig config = {});

    /** Serve shared key material without copying it — the form the
     *  tenant registry hands out, so an LRU eviction does not tear
     *  the keys out from under a draining service. The pointee is
     *  treated as immutable for the service's lifetime. */
    explicit BootstrapService(
        std::shared_ptr<const tfhe::EvaluationKeys> keys,
        ServiceConfig config = {});

    /** Convenience: serve from a full key set (extracts the
     *  evaluation half). */
    explicit BootstrapService(const tfhe::KeySet &keys,
                              ServiceConfig config = {});

    BootstrapService(const BootstrapService &) = delete;
    BootstrapService &operator=(const BootstrapService &) = delete;

    /** Drains and joins (shutdown()) if still running. */
    ~BootstrapService();

    const ServiceConfig &config() const { return config_; }

    /**
     * Register a LUT the service will bootstrap against; requests
     * reference it by the returned id. Batches never mix LUTs
     * (mirroring the per-LUT test polynomial the hardware holds
     * resident during a group's blind rotations).
     */
    LutId registerLut(std::vector<tfhe::Torus32> lut);

    /**
     * Submit one request, blocking while the service is at its
     * maxOutstanding bound. The future is fulfilled when the
     * containing superbatch completes. fatal() if the service has been
     * shut down.
     */
    std::future<tfhe::LweCiphertext>
    submit(tfhe::LweCiphertext ct, LutId lut,
           std::optional<ServiceClock::time_point> deadline =
               std::nullopt);

    /**
     * Fail-fast submission: returns std::nullopt instead of blocking
     * when the service is at its backpressure bound (or shut down).
     */
    std::optional<std::future<tfhe::LweCiphertext>>
    trySubmit(tfhe::LweCiphertext ct, LutId lut,
              std::optional<ServiceClock::time_point> deadline =
                  std::nullopt);

    /**
     * Submit a whole circuit: `inputs` carries one ciphertext per
     * circuit input (creation order), the future yields one ciphertext
     * per marked output. The circuit is lowered level by level and
     * executed through exec::CircuitExecutor on the configured
     * backend (kCosim circuits run on the functional backend; the
     * lockstep cross-check covers the single-LUT path). The circuit's
     * bootstrap count weighs against maxOutstanding, so big circuits
     * apply proportional backpressure; blocks at the bound like
     * submit(). fatal() if the service has been shut down.
     */
    std::future<std::vector<tfhe::LweCiphertext>>
    submitCircuit(circuit::Circuit circuit,
                  std::vector<tfhe::LweCiphertext> inputs);

    /** Ship every partial batch now instead of waiting for the flush
     *  timer (asynchronous; does not wait for completion). */
    void flush();

    /**
     * Stop admission, flush partial batches, complete every accepted
     * request and join all threads. Idempotent.
     */
    void shutdown();

    /** True once shutdown() has completed. */
    bool stopped() const;

    /** Accepted-but-uncompleted requests right now. */
    std::size_t outstanding() const;

    /** Consistent snapshot of all counters and histograms. */
    ServiceStats stats() const;

  private:
    struct Request
    {
        tfhe::LweCiphertext ct;
        std::optional<ServiceClock::time_point> deadline;
        ServiceClock::time_point submitted;
        std::promise<tfhe::LweCiphertext> promise;
    };

    /** Why a batch left the pending buckets (for the counters). */
    enum class FlushReason
    {
        kFull,
        kTimer,
        kDrain
    };

    struct Superbatch
    {
        LutId lutId = 0;
        std::shared_ptr<const std::vector<tfhe::Torus32>> lut;
        std::vector<Request> requests;
        FlushReason reason = FlushReason::kFull;
    };

    /** One accepted submitCircuit() job awaiting a worker. */
    struct CircuitJob
    {
        circuit::Circuit circuit;
        std::vector<tfhe::LweCiphertext> inputs;
        std::uint64_t cost = 0; //!< outstanding_ weight (bootstraps)
        ServiceClock::time_point submitted;
        std::promise<std::vector<tfhe::LweCiphertext>> promise;
    };

    std::optional<std::future<tfhe::LweCiphertext>>
    enqueue(tfhe::LweCiphertext ct, LutId lut,
            std::optional<ServiceClock::time_point> deadline,
            bool block);

    /** Move up to superbatchSize requests of one bucket into ready_.
     *  Caller holds mu_. */
    void assembleLocked(LutId lut, FlushReason reason);

    /** Earliest instant any pending request becomes due (timer or
     *  deadline). Caller holds mu_. */
    std::optional<ServiceClock::time_point> nextDueLocked() const;

    void assemblerMain();
    void workerMain();

    /** One cached single-LUT batch lowering: the one-level circuit
     *  plus its compiled Program (LoweredCircuit points into the
     *  heap-held Circuit, so entries are stable once created). */
    struct CachedBatch
    {
        std::unique_ptr<circuit::Circuit> circuit;
        circuit::LoweredCircuit lowered;
    };

    /** The one-level circuit bootstrapping `count` ciphertexts through
     *  a registered LUT, lowered on first use and cached (superbatches
     *  repeat sizes heavily: full batches always, partial flushes
     *  often). Thread-safe; the returned reference stays valid for the
     *  service's lifetime. */
    const CachedBatch &batchCircuitFor(LutId lut, std::size_t count);

    /** The backend a worker executes against, per ServiceConfig
     *  (kCosim maps to functional here; the lockstep pair is built
     *  inline in executeBatch). */
    std::unique_ptr<exec::ExecutionBackend> makeWorkerBackend() const;

    /** Execute one assembled superbatch — as a one-level circuit —
     *  through the configured execution backend; returns one output
     *  per input, in order. */
    std::vector<tfhe::LweCiphertext>
    executeBatch(const Superbatch &batch,
                 const std::vector<tfhe::LweCiphertext> &inputs);

    /** Lower and run one submitted circuit. */
    std::vector<tfhe::LweCiphertext> executeCircuit(CircuitJob &job);

    const std::shared_ptr<const tfhe::EvaluationKeys> keys_;
    const ServiceConfig config_;
    const ServiceClock::time_point start_;
    const compiler::SwScheduler scheduler_; //!< compiles superbatches

    mutable std::mutex programMu_; //!< guards batchCircuits_/diskCache_
    std::map<std::pair<LutId, std::size_t>, CachedBatch>
        batchCircuits_;
    std::unique_ptr<compiler::ProgramDiskCache> diskCache_;

    mutable std::mutex mu_;
    std::condition_variable spaceCv_;    //!< submitters await capacity
    std::condition_variable assembleCv_; //!< assembler awaits work
    std::condition_variable workCv_;     //!< workers await batches

    // All fields below are guarded by mu_.
    std::vector<std::shared_ptr<const std::vector<tfhe::Torus32>>>
        luts_;
    std::vector<std::deque<Request>> pending_; //!< one bucket per LUT
    std::deque<Superbatch> ready_;
    std::deque<CircuitJob> circuitReady_; //!< accepted circuits
    std::size_t pendingCount_ = 0;
    std::size_t outstanding_ = 0;
    bool draining_ = false;
    bool flushRequested_ = false;
    bool assemblerDone_ = false;
    bool stopped_ = false;
    sim::StatSet stats_{"service"};

    std::mutex shutdownMu_; //!< serializes shutdown() callers (joins)
    std::thread assembler_;
    std::vector<std::thread> workers_;
};

} // namespace morphling::service

#endif // MORPHLING_SERVICE_BOOTSTRAP_SERVICE_H
