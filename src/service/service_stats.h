/**
 * @file
 * Point-in-time statistics snapshot of a BootstrapService.
 *
 * The service aggregates its counters in a sim::StatSet (the same
 * machinery every simulator component uses) guarded by the service
 * mutex; stats() copies the set plus convenience fields into this
 * value type, so readers never race the worker threads.
 */

#ifndef MORPHLING_SERVICE_SERVICE_STATS_H
#define MORPHLING_SERVICE_SERVICE_STATS_H

#include <cstdint>
#include <iosfwd>

#include "sim/stats.h"

namespace morphling::service {

/** A consistent snapshot of service counters (plain value type). */
struct ServiceStats
{
    // --- request lifecycle counters -----------------------------------
    std::uint64_t accepted = 0;   //!< requests admitted past backpressure
    std::uint64_t rejected = 0;   //!< trySubmit refusals (queue full)
    std::uint64_t completed = 0;  //!< promises fulfilled

    // --- superbatch counters ------------------------------------------
    std::uint64_t superbatches = 0;  //!< batches dispatched in total
    std::uint64_t fullBatches = 0;   //!< dispatched at superbatchSize
    std::uint64_t timerFlushes = 0;  //!< partial, shipped by max-wait
    std::uint64_t drainFlushes = 0;  //!< partial, shipped by shutdown
    std::uint64_t deadlineMisses = 0; //!< dispatched past their deadline

    // --- circuit submissions ------------------------------------------
    std::uint64_t circuits = 0;          //!< circuits accepted
    std::uint64_t circuitsCompleted = 0; //!< circuit promises fulfilled
    std::uint64_t circuitBootstraps = 0; //!< bootstraps retired in circuits

    // --- instantaneous state ------------------------------------------
    std::uint64_t pending = 0;     //!< accepted, not yet in a batch
    std::uint64_t outstanding = 0; //!< accepted, not yet completed
    double elapsedSeconds = 0;     //!< service lifetime so far

    // --- distributions (sim/stats histograms) -------------------------
    sim::Histogram occupancy;        //!< requests per dispatched batch
    sim::Histogram queueLatencyUs;   //!< submit -> batch assembly
    sim::Histogram batchLatencyUs;   //!< batch assembly -> completion
    sim::Histogram requestLatencyUs; //!< submit -> completion
    sim::Histogram circuitLatencyUs; //!< submitCircuit -> completion

    /** Everything above in stat-set form, for dump(). */
    sim::StatSet raw{"service"};

    /** Sustained completion rate over the service lifetime. */
    double
    throughputBs() const
    {
        return elapsedSeconds > 0 ? completed / elapsedSeconds : 0.0;
    }

    /** Mean batch fill as a fraction of the configured size. */
    double
    meanOccupancy(unsigned superbatch_size) const
    {
        if (superbatch_size == 0 || occupancy.count() == 0)
            return 0.0;
        return occupancy.mean() / superbatch_size;
    }

    /** Render "service.name = value" lines (StatSet format). */
    void
    dump(std::ostream &os) const
    {
        raw.dump(os);
    }
};

} // namespace morphling::service

#endif // MORPHLING_SERVICE_SERVICE_STATS_H
