#include "bootstrap_service.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "exec/circuit_executor.h"
#include "exec/cosim.h"
#include "exec/functional_backend.h"
#include "exec/timing_backend.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace morphling::service {

namespace {

double
toMicros(ServiceClock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

#if MORPHLING_TELEMETRY_ENABLED
/** Process-wide scrapeable mirror of the per-service StatSet: the
 *  registry view a metrics endpoint exposes (docs/observability.md).
 *  Resolved once; all update paths are lock-free. */
struct ServiceTelem
{
    telemetry::MetricsRegistry &reg = telemetry::MetricsRegistry::instance();
    telemetry::Counter &accepted =
        reg.counter("service.requests_accepted",
                    "requests admitted past backpressure");
    telemetry::Counter &rejected =
        reg.counter("service.requests_rejected",
                    "trySubmit refusals (queue full)");
    telemetry::Counter &completed =
        reg.counter("service.requests_completed", "promises fulfilled");
    telemetry::Counter &batches =
        reg.counter("service.superbatches", "batches dispatched");
    telemetry::Counter &flushFull =
        reg.counter("service.flush_full",
                    "batches dispatched at full size");
    telemetry::Counter &flushTimer =
        reg.counter("service.flush_timer",
                    "partial batches shipped by the flush timer");
    telemetry::Counter &flushDrain =
        reg.counter("service.flush_drain",
                    "partial batches shipped by shutdown drain");
    telemetry::Gauge &queueDepth =
        reg.gauge("service.queue_depth",
                  "submitted requests awaiting superbatch assembly");
    telemetry::Gauge &outstanding =
        reg.gauge("service.outstanding",
                  "accepted-but-uncompleted requests");
    telemetry::Histogram &occupancy =
        reg.histogram("service.batch_occupancy",
                      "requests per dispatched batch");
    telemetry::Histogram &batchLatencyUs =
        reg.histogram("service.batch_latency_us",
                      "batch assembly -> completion");
    telemetry::Histogram &requestLatencyUs =
        reg.histogram("service.request_latency_us",
                      "submit -> completion");
    telemetry::Counter &circuits =
        reg.counter("service.circuits", "circuit submissions accepted");
    telemetry::Histogram &circuitLatencyUs =
        reg.histogram("service.circuit_latency_us",
                      "submitCircuit -> completion");

    static ServiceTelem &
    get()
    {
        static ServiceTelem telem;
        return telem;
    }
};
#endif // MORPHLING_TELEMETRY_ENABLED

/** Deref the shared key material, throwing (not crashing) on null —
 *  runs in the constructor's initializer list, before any member that
 *  needs the params. */
const tfhe::EvaluationKeys &
requireKeys(const std::shared_ptr<const tfhe::EvaluationKeys> &keys)
{
    if (keys == nullptr)
        throw std::invalid_argument(
            "BootstrapService: null key material");
    return *keys;
}

ServiceConfig
normalized(ServiceConfig config,
           const std::shared_ptr<const tfhe::EvaluationKeys> &keys)
{
    if (config.numWorkers == 0) {
        config.numWorkers =
            std::max(1u, std::thread::hardware_concurrency());
    }
    // Fingerprint once per service, not once per batch: every worker
    // backend the kRemote path builds would otherwise re-serialize
    // the BSK just to identify the keys.
    if (config.backend == exec::BackendKind::kRemote &&
        !config.remote.fingerprint.has_value() && keys != nullptr) {
        config.remote.fingerprint =
            tfhe::fingerprintEvaluationKeys(*keys);
    }
    return config;
}

} // namespace

std::optional<std::string>
ServiceConfig::validate() const
{
    if (superbatchSize == 0)
        return "superbatchSize must be positive";
    if (maxOutstanding == 0)
        return "maxOutstanding must be positive";
    if (maxWait.count() < 0)
        return "maxWait must be non-negative (a negative flush timer "
               "would ship every batch before it can fill)";
    if (backend == exec::BackendKind::kTiming) {
        return "BackendKind::kTiming produces cycle counts, not "
               "ciphertexts; the service cannot fulfil requests with "
               "it (use kFunctional, or kCosim for a checked run)";
    }
    // numShards is rejected for every backend, not just the sharded
    // one: a config that flips backend kinds at runtime must not hide
    // a zero until the flip happens.
    if (numShards == 0) {
        return "numShards must be >= 1 (kShardedFunctional divides "
               "superbatch groups by it)";
    }
    if (batch.checkNoise && batch.minSlotSigmas <= 0) {
        return "batch.checkNoise with minSlotSigmas <= 0 can never "
               "flag a thin noise margin; use a positive threshold or "
               "disable checkNoise";
    }
    if (backend == exec::BackendKind::kRemote && remote.port == 0) {
        return "BackendKind::kRemote needs remote.port (the "
               "RemoteServer's TCP port; 0 is not a destination)";
    }
    if (backend == exec::BackendKind::kRemote &&
        remote.maxAttempts == 0) {
        return "remote.maxAttempts must be >= 1 (a request needs at "
               "least one attempt)";
    }
    return std::nullopt;
}

BootstrapService::BootstrapService(tfhe::EvaluationKeys keys,
                                   ServiceConfig config)
    : BootstrapService(std::make_shared<const tfhe::EvaluationKeys>(
                           std::move(keys)),
                       std::move(config))
{
}

BootstrapService::BootstrapService(
    std::shared_ptr<const tfhe::EvaluationKeys> keys,
    ServiceConfig config)
    : keys_(std::move(keys)), config_(normalized(config, keys_)),
      start_(ServiceClock::now()), scheduler_(requireKeys(keys_).params)
{
    // A misconfigured service is the caller's error to report, not a
    // process abort: validate() returns the diagnostic, we throw it.
    if (const auto error = config_.validate())
        throw std::invalid_argument("BootstrapService: " + *error);
    if (!config_.programCacheDir.empty()) {
        diskCache_ = std::make_unique<compiler::ProgramDiskCache>(
            config_.programCacheDir);
    }

    // Create every stat up front so snapshots can lookup() them even
    // before the first request.
    stats_.scalar("accepted", "requests admitted past backpressure");
    stats_.scalar("rejected", "trySubmit refusals (queue full)");
    stats_.scalar("completed", "promises fulfilled");
    stats_.scalar("superbatches", "batches dispatched");
    stats_.scalar("fullBatches", "batches dispatched at full size");
    stats_.scalar("timerFlushes", "partial batches shipped by timer");
    stats_.scalar("drainFlushes", "partial batches shipped by drain");
    stats_.scalar("deadlineMisses", "requests dispatched past deadline");
    stats_.scalar("circuits", "circuit submissions accepted");
    stats_.scalar("circuitsCompleted", "circuit promises fulfilled");
    stats_.scalar("circuitBootstraps", "bootstraps retired in circuits");
    stats_.histogram("occupancy", "requests per dispatched batch");
    stats_.histogram("queueLatencyUs", "submit -> batch assembly");
    stats_.histogram("batchLatencyUs", "batch assembly -> completion");
    stats_.histogram("requestLatencyUs", "submit -> completion");
    stats_.histogram("circuitLatencyUs", "submitCircuit -> completion");

    assembler_ = std::thread(&BootstrapService::assemblerMain, this);
    workers_.reserve(config_.numWorkers);
    for (unsigned w = 0; w < config_.numWorkers; ++w)
        workers_.emplace_back(&BootstrapService::workerMain, this);
}

BootstrapService::BootstrapService(const tfhe::KeySet &keys,
                                   ServiceConfig config)
    : BootstrapService(tfhe::EvaluationKeys::fromKeySet(keys),
                       std::move(config))
{
}

BootstrapService::~BootstrapService()
{
    shutdown();
}

LutId
BootstrapService::registerLut(std::vector<tfhe::Torus32> lut)
{
    fatal_if(lut.empty(), "cannot register an empty LUT");
    std::lock_guard<std::mutex> lk(mu_);
    fatal_if(draining_, "registerLut on a shut-down BootstrapService");
    luts_.push_back(
        std::make_shared<const std::vector<tfhe::Torus32>>(
            std::move(lut)));
    pending_.emplace_back();
    return static_cast<LutId>(luts_.size() - 1);
}

std::future<tfhe::LweCiphertext>
BootstrapService::submit(tfhe::LweCiphertext ct, LutId lut,
                         std::optional<ServiceClock::time_point> deadline)
{
    auto future = enqueue(std::move(ct), lut, deadline, /*block=*/true);
    panic_if(!future.has_value(), "blocking submit returned no future");
    return std::move(*future);
}

std::optional<std::future<tfhe::LweCiphertext>>
BootstrapService::trySubmit(
    tfhe::LweCiphertext ct, LutId lut,
    std::optional<ServiceClock::time_point> deadline)
{
    return enqueue(std::move(ct), lut, deadline, /*block=*/false);
}

std::future<std::vector<tfhe::LweCiphertext>>
BootstrapService::submitCircuit(circuit::Circuit circuit,
                                std::vector<tfhe::LweCiphertext> inputs)
{
    MORPHLING_SPAN("service", "submit_circuit");
    // Re-check the config at the circuit entry point as well: the
    // constructor already threw on a bad config, but this keeps the
    // invariant local (and cheap) should construction paths multiply.
    if (const auto error = config_.validate())
        throw std::invalid_argument("BootstrapService: " + *error);
    panic_if(inputs.size() != circuit.numInputs(), "circuit has ",
             circuit.numInputs(), " inputs, got ", inputs.size());

    CircuitJob job;
    // A circuit's admission weight is its bootstrap count, so a large
    // circuit occupies proportional superbatch capacity; linear-only
    // circuits still weigh 1 (they hold a promise slot).
    job.cost = std::max<std::uint64_t>(1, circuit.bootstrapCount());
    job.circuit = std::move(circuit);
    job.inputs = std::move(inputs);
    auto future = job.promise.get_future();
    {
        std::unique_lock<std::mutex> lk(mu_);
        fatal_if(draining_,
                 "submitCircuit on a shut-down BootstrapService");
        spaceCv_.wait(lk, [&] {
            return draining_ || outstanding_ < config_.maxOutstanding;
        });
        fatal_if(draining_,
                 "BootstrapService shut down under a blocked "
                 "submitCircuit");
        job.submitted = ServiceClock::now();
        outstanding_ += job.cost;
        ++stats_.scalar("circuits");
        MORPHLING_TELEMETRY_ONLY({
            auto &telem = ServiceTelem::get();
            telem.circuits.inc();
            telem.outstanding.set(static_cast<double>(outstanding_));
        })
        circuitReady_.push_back(std::move(job));
    }
    workCv_.notify_one();
    return future;
}

std::optional<std::future<tfhe::LweCiphertext>>
BootstrapService::enqueue(
    tfhe::LweCiphertext ct, LutId lut,
    std::optional<ServiceClock::time_point> deadline, bool block)
{
    MORPHLING_SPAN("service", "submit");
    std::future<tfhe::LweCiphertext> future;
    {
        std::unique_lock<std::mutex> lk(mu_);
        fatal_if(lut >= luts_.size(), "unknown LUT id ", lut);
        if (block) {
            fatal_if(draining_,
                     "submit on a shut-down BootstrapService");
            spaceCv_.wait(lk, [&] {
                return draining_ ||
                       outstanding_ < config_.maxOutstanding;
            });
            fatal_if(draining_,
                     "BootstrapService shut down under a blocked "
                     "submit");
        } else if (draining_ ||
                   outstanding_ >= config_.maxOutstanding) {
            ++stats_.scalar("rejected");
            MORPHLING_TELEMETRY_ONLY(ServiceTelem::get().rejected.inc();)
            return std::nullopt;
        }

        Request request;
        request.ct = std::move(ct);
        request.deadline = deadline;
        request.submitted = ServiceClock::now();
        future = request.promise.get_future();
        pending_[lut].push_back(std::move(request));
        ++pendingCount_;
        ++outstanding_;
        ++stats_.scalar("accepted");
        MORPHLING_TELEMETRY_ONLY({
            auto &telem = ServiceTelem::get();
            telem.accepted.inc();
            telem.queueDepth.set(static_cast<double>(pendingCount_));
            telem.outstanding.set(static_cast<double>(outstanding_));
        })
    }
    // Wake the assembler: the bucket may be full, or the new request's
    // timer/deadline may be earlier than its current sleep target.
    assembleCv_.notify_one();
    return future;
}

void
BootstrapService::flush()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        flushRequested_ = true;
    }
    assembleCv_.notify_one();
}

void
BootstrapService::assembleLocked(LutId lut, FlushReason reason)
{
    MORPHLING_SPAN("service", "assemble");
    auto &bucket = pending_[lut];
    const std::size_t take =
        std::min<std::size_t>(bucket.size(), config_.superbatchSize);
    panic_if(take == 0, "assembling an empty bucket");

    Superbatch batch;
    batch.lutId = lut;
    batch.lut = luts_[lut];
    batch.reason = reason;
    batch.requests.reserve(take);
    const auto now = ServiceClock::now();
    for (std::size_t i = 0; i < take; ++i) {
        Request &request = bucket.front();
        stats_.histogram("queueLatencyUs")
            .sample(toMicros(now - request.submitted));
        if (request.deadline && now > *request.deadline)
            ++stats_.scalar("deadlineMisses");
        batch.requests.push_back(std::move(request));
        bucket.pop_front();
    }
    pendingCount_ -= take;

    ++stats_.scalar("superbatches");
    stats_.histogram("occupancy").sample(static_cast<double>(take));
    switch (reason) {
      case FlushReason::kFull:
        ++stats_.scalar("fullBatches");
        break;
      case FlushReason::kTimer:
        ++stats_.scalar("timerFlushes");
        break;
      case FlushReason::kDrain:
        ++stats_.scalar("drainFlushes");
        break;
    }
    MORPHLING_TELEMETRY_ONLY({
        auto &telem = ServiceTelem::get();
        telem.batches.inc();
        telem.occupancy.observe(static_cast<double>(take));
        telem.queueDepth.set(static_cast<double>(pendingCount_));
        switch (reason) {
          case FlushReason::kFull:
            telem.flushFull.inc();
            break;
          case FlushReason::kTimer:
            telem.flushTimer.inc();
            break;
          case FlushReason::kDrain:
            telem.flushDrain.inc();
            break;
        }
    })

    ready_.push_back(std::move(batch));
}

std::optional<ServiceClock::time_point>
BootstrapService::nextDueLocked() const
{
    std::optional<ServiceClock::time_point> due;
    auto consider = [&](ServiceClock::time_point t) {
        if (!due || t < *due)
            due = t;
    };
    for (const auto &bucket : pending_) {
        if (bucket.empty())
            continue;
        consider(bucket.front().submitted + config_.maxWait);
        for (const auto &request : bucket) {
            if (request.deadline)
                consider(*request.deadline);
        }
    }
    return due;
}

void
BootstrapService::assemblerMain()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        bool assembled = false;

        // Full buckets always ship (a bucket can exceed the batch size
        // if submissions outpace this thread).
        for (LutId lut = 0; lut < pending_.size(); ++lut) {
            while (pending_[lut].size() >= config_.superbatchSize) {
                assembleLocked(lut, FlushReason::kFull);
                assembled = true;
            }
        }

        if (draining_ || flushRequested_) {
            const auto reason = draining_ ? FlushReason::kDrain
                                          : FlushReason::kTimer;
            for (LutId lut = 0; lut < pending_.size(); ++lut) {
                if (!pending_[lut].empty()) {
                    assembleLocked(lut, reason);
                    assembled = true;
                }
            }
            flushRequested_ = false;
        } else {
            // Timer / deadline flushes: ship buckets whose oldest
            // request has waited maxWait, or that contain a request
            // whose deadline has arrived.
            const auto now = ServiceClock::now();
            for (LutId lut = 0; lut < pending_.size(); ++lut) {
                const auto &bucket = pending_[lut];
                if (bucket.empty())
                    continue;
                bool is_due =
                    now >= bucket.front().submitted + config_.maxWait;
                for (const auto &request : bucket) {
                    if (is_due)
                        break;
                    is_due = request.deadline &&
                             now >= *request.deadline;
                }
                if (is_due) {
                    assembleLocked(lut, FlushReason::kTimer);
                    assembled = true;
                }
            }
        }

        if (assembled)
            workCv_.notify_all();
        if (draining_ && pendingCount_ == 0)
            break;

        if (const auto due = nextDueLocked())
            assembleCv_.wait_until(lk, *due);
        else
            assembleCv_.wait(lk);
    }
    assemblerDone_ = true;
    lk.unlock();
    workCv_.notify_all();
}

const BootstrapService::CachedBatch &
BootstrapService::batchCircuitFor(LutId lut, std::size_t count)
{
    std::lock_guard<std::mutex> lk(programMu_);
    const auto key = std::make_pair(lut, count);
    auto it = batchCircuits_.find(key);
    if (it == batchCircuits_.end()) {
        MORPHLING_SPAN("service", "compile_batch");
        // The one-level circuit: `count` word inputs, each bootstrapped
        // through the registered LUT. Its single LoweredStep's Program
        // is exactly scheduleBootstrapBatch(count), so caching by
        // (lut, count) subsumes the old per-count program cache.
        std::shared_ptr<const std::vector<tfhe::Torus32>> table;
        {
            std::lock_guard<std::mutex> service_lk(mu_);
            table = luts_[lut];
        }
        CachedBatch cached;
        cached.circuit = std::make_unique<circuit::Circuit>();
        const circuit::LutId table_id =
            cached.circuit->registerTorusLut(*table);
        for (std::size_t i = 0; i < count; ++i) {
            const circuit::Wire in = cached.circuit->wordInput(0);
            cached.circuit->markOutput(
                cached.circuit->applyLut(table_id, in));
        }
        cached.lowered = circuit::lower(*cached.circuit, scheduler_,
                                        diskCache_.get());
        it = batchCircuits_.emplace(key, std::move(cached)).first;
    }
    return it->second;
}

std::unique_ptr<exec::ExecutionBackend>
BootstrapService::makeWorkerBackend() const
{
    exec::BackendSpec spec;
    // kCosim's lockstep pair is driven inline in executeBatch; circuit
    // jobs under kCosim run on the functional half.
    spec.kind = config_.backend == exec::BackendKind::kCosim
                    ? exec::BackendKind::kFunctional
                    : config_.backend;
    spec.numShards = config_.numShards;
    spec.timing = config_.timing;
    spec.remote = config_.remote;
    return exec::makeBackend(*keys_, spec);
}

std::vector<tfhe::LweCiphertext>
BootstrapService::executeBatch(
    const Superbatch &batch,
    const std::vector<tfhe::LweCiphertext> &inputs)
{
    const CachedBatch &cached =
        batchCircuitFor(batch.lutId, inputs.size());

    if (config_.backend == exec::BackendKind::kCosim) {
        // The lockstep pair needs both backends at once, which the
        // single-backend CircuitExecutor cannot drive; a one-level
        // circuit is a single Program run, so feed it directly.
        panic_if(cached.lowered.numLevels() != 1 ||
                     cached.lowered.levels[0].size() != 1,
                 "single-LUT batch lowered to an unexpected shape");
        const compiler::Program &program =
            cached.lowered.levels[0][0].program;
        const exec::Job job =
            exec::Job::batch(inputs, *batch.lut, config_.batch);
        exec::FunctionalBackend functional(*keys_);
        exec::TimingBackend timing(config_.timing, keys_->params);
        exec::CosimOptions copts;
        copts.referenceKeys = keys_.get();
        exec::LockstepCosim cosim(functional, timing, copts);
        auto report = cosim.run(program, job);
        panic_if(!report.ok(), "service co-simulation diverged: ",
                 report.summary());
        return std::move(report.functional.outputs);
    }

    auto backend = makeWorkerBackend();
    exec::CircuitExecutor executor(keys_->params, *backend,
                                   config_.batch);
    auto result = executor.run(cached.lowered, inputs);
    panic_if(result.outputs.size() != inputs.size(),
             "batch circuit produced ", result.outputs.size(),
             " outputs for ", inputs.size(), " requests");
    return std::move(result.outputs);
}

std::vector<tfhe::LweCiphertext>
BootstrapService::executeCircuit(CircuitJob &job)
{
    MORPHLING_SPAN("service", "execute_circuit");
    // The disk cache is single-threaded by contract; circuit lowering
    // from concurrent workers serializes on programMu_ only when one
    // is attached (compilation is cheap next to execution).
    const auto lowered = [&] {
        if (diskCache_ == nullptr)
            return circuit::lower(job.circuit, scheduler_);
        std::lock_guard<std::mutex> lk(programMu_);
        return circuit::lower(job.circuit, scheduler_,
                              diskCache_.get());
    }();
    auto backend = makeWorkerBackend();
    exec::CircuitExecutor executor(keys_->params, *backend,
                                   config_.batch);
    auto result = executor.run(lowered, job.inputs);
    return std::move(result.outputs);
}

void
BootstrapService::workerMain()
{
    for (;;) {
        Superbatch batch;
        bool have_batch = false;
        CircuitJob circuit_job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            workCv_.wait(lk, [&] {
                return !ready_.empty() || !circuitReady_.empty() ||
                       assemblerDone_;
            });
            if (!ready_.empty()) {
                // Superbatches first: they aggregate many small
                // requests whose latency budget is the flush timer.
                batch = std::move(ready_.front());
                ready_.pop_front();
                have_batch = true;
            } else if (!circuitReady_.empty()) {
                circuit_job = std::move(circuitReady_.front());
                circuitReady_.pop_front();
            } else {
                return; // drained and assembler retired
            }
        }

        if (!have_batch) {
            auto outputs = executeCircuit(circuit_job);
            const auto t1 = ServiceClock::now();
            const std::uint64_t bootstraps =
                circuit_job.circuit.bootstrapCount();
            {
                std::lock_guard<std::mutex> lk(mu_);
                ++stats_.scalar("circuitsCompleted");
                stats_.scalar("circuitBootstraps") +=
                    static_cast<double>(bootstraps);
                stats_.histogram("circuitLatencyUs")
                    .sample(toMicros(t1 - circuit_job.submitted));
                outstanding_ -= circuit_job.cost;
                MORPHLING_TELEMETRY_ONLY({
                    auto &telem = ServiceTelem::get();
                    telem.circuitLatencyUs.observe(
                        toMicros(t1 - circuit_job.submitted));
                    telem.outstanding.set(
                        static_cast<double>(outstanding_));
                })
            }
            spaceCv_.notify_all();
            if (config_.onComplete) {
                CompletionInfo info;
                info.latencyUs = toMicros(t1 - circuit_job.submitted);
                info.circuit = true;
                info.bootstraps = std::max<std::uint64_t>(1, bootstraps);
                config_.onComplete(info);
            }
            circuit_job.promise.set_value(std::move(outputs));
            continue;
        }

        const std::size_t count = batch.requests.size();
        std::vector<tfhe::LweCiphertext> inputs;
        inputs.reserve(count);
        for (auto &request : batch.requests)
            inputs.push_back(std::move(request.ct));

        const auto t0 = ServiceClock::now();
        std::vector<tfhe::LweCiphertext> outputs;
        {
            MORPHLING_SPAN("service", "execute_batch");
            outputs = executeBatch(batch, inputs);
        }
        const auto t1 = ServiceClock::now();
        panic_if(outputs.size() != count, "batch size mismatch");

        // Book-keeping before fulfilling the promises, so a client
        // that sees its future ready also sees it counted.
        {
            std::lock_guard<std::mutex> lk(mu_);
            stats_.scalar("completed") += static_cast<double>(count);
            stats_.histogram("batchLatencyUs")
                .sample(toMicros(t1 - t0));
            for (const auto &request : batch.requests) {
                stats_.histogram("requestLatencyUs")
                    .sample(toMicros(t1 - request.submitted));
            }
            outstanding_ -= count;
            MORPHLING_TELEMETRY_ONLY({
                auto &telem = ServiceTelem::get();
                telem.completed.inc(count);
                telem.outstanding.set(
                    static_cast<double>(outstanding_));
                telem.batchLatencyUs.observe(toMicros(t1 - t0));
                for (const auto &request : batch.requests) {
                    telem.requestLatencyUs.observe(
                        toMicros(t1 - request.submitted));
                }
            })
        }
        spaceCv_.notify_all();

        // Per-request completion hook (tenant SLO tracking): fired
        // before the promises so a client that sees its future ready
        // also sees its latency recorded.
        if (config_.onComplete) {
            for (const auto &request : batch.requests) {
                CompletionInfo info;
                info.latencyUs = toMicros(t1 - request.submitted);
                info.deadlineMissed =
                    request.deadline && t1 > *request.deadline;
                config_.onComplete(info);
            }
        }

        MORPHLING_SPAN("service", "complete");
        for (std::size_t i = 0; i < count; ++i)
            batch.requests[i].promise.set_value(
                std::move(outputs[i]));
    }
}

void
BootstrapService::shutdown()
{
    std::lock_guard<std::mutex> shutdown_lock(shutdownMu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopped_)
            return;
        draining_ = true;
    }
    assembleCv_.notify_all();
    spaceCv_.notify_all();
    if (assembler_.joinable())
        assembler_.join();
    workCv_.notify_all();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    std::lock_guard<std::mutex> lk(mu_);
    stopped_ = true;
}

bool
BootstrapService::stopped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stopped_;
}

std::size_t
BootstrapService::outstanding() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return outstanding_;
}

ServiceStats
BootstrapService::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ServiceStats out;
    auto scalar = [&](const char *name) {
        return static_cast<std::uint64_t>(stats_.lookup(name).value());
    };
    auto histogram = [&](const char *name) {
        for (const auto *h : stats_.histograms()) {
            if (h->name() == name)
                return *h;
        }
        panic("no histogram '", name, "' in service stats");
    };
    out.accepted = scalar("accepted");
    out.rejected = scalar("rejected");
    out.completed = scalar("completed");
    out.superbatches = scalar("superbatches");
    out.fullBatches = scalar("fullBatches");
    out.timerFlushes = scalar("timerFlushes");
    out.drainFlushes = scalar("drainFlushes");
    out.deadlineMisses = scalar("deadlineMisses");
    out.circuits = scalar("circuits");
    out.circuitsCompleted = scalar("circuitsCompleted");
    out.circuitBootstraps = scalar("circuitBootstraps");
    out.pending = pendingCount_;
    out.outstanding = outstanding_;
    out.elapsedSeconds = std::chrono::duration<double>(
                             ServiceClock::now() - start_)
                             .count();
    out.occupancy = histogram("occupancy");
    out.queueLatencyUs = histogram("queueLatencyUs");
    out.batchLatencyUs = histogram("batchLatencyUs");
    out.requestLatencyUs = histogram("requestLatencyUs");
    out.circuitLatencyUs = histogram("circuitLatencyUs");
    out.raw = stats_;
    return out;
}

} // namespace morphling::service
