/**
 * @file
 * Per-tenant evaluation-key registry with an LRU over materialized
 * keys.
 *
 * A multi-tenant deployment holds one EvaluationKeys per tenant — at
 * production parameters the BSK alone is tens of megabytes, so only a
 * bounded working set can stay materialized. The registry keeps every
 * enrolled tenant's keys in canonical serialized form ("cold
 * storage", the cheap representation) and materializes at most
 * `maxResident` of them at a time, evicting in
 * least-recently-acquired order. A warm-up (re-materialization from
 * the cold bytes) is measured and exported, so the cost of an
 * undersized working set is visible in the same telemetry that shows
 * the hit rate.
 *
 * Keys are handed out as shared_ptr<const EvaluationKeys>: an
 * eviction drops only the registry's reference, so a BootstrapService
 * still draining against those keys is never torn down mid-batch —
 * the memory is reclaimed when the last holder lets go.
 *
 * Identity is the content-derived tfhe::KeyFingerprint
 * (tfhe/serialize.h): two enrollments of byte-identical keys agree on
 * it, and any mutation changes it, which is what the warm-up
 * bit-identity guarantee rests on (tests/test_tenant.cc).
 *
 * Thread safety: every public method may be called from any thread.
 */

#ifndef MORPHLING_SERVICE_TENANT_REGISTRY_H
#define MORPHLING_SERVICE_TENANT_REGISTRY_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "service/tenant_stats.h"
#include "telemetry/metrics.h"
#include "tfhe/serialize.h"

namespace morphling::service {

/** Capacity model of a TenantRegistry. */
struct TenantRegistryConfig
{
    /** Tenants whose keys may be materialized simultaneously
     *  (clamped to >= 1: the tenant being acquired always fits). */
    std::size_t maxResident = 4;
};

/** A point-in-time snapshot of registry counters. */
struct TenantRegistryStats
{
    std::size_t enrolled = 0;        //!< tenants known
    std::size_t resident = 0;        //!< tenants materialized
    std::uint64_t hits = 0;          //!< acquire() on a resident tenant
    std::uint64_t warmUps = 0;       //!< acquire() that deserialized
    std::uint64_t evictions = 0;     //!< LRU + forced releases
    std::uint64_t residentBytes = 0; //!< wire bytes held materialized
    double lastWarmUpUs = 0;         //!< most recent warm-up cost
};

class TenantRegistry
{
  public:
    /** Metrics land in `metrics` (nullptr = the process registry)
     *  under "tenant.registry.*". */
    explicit TenantRegistry(TenantRegistryConfig config = {},
                            telemetry::MetricsRegistry *metrics =
                                nullptr);

    TenantRegistry(const TenantRegistry &) = delete;
    TenantRegistry &operator=(const TenantRegistry &) = delete;

    const TenantRegistryConfig &config() const { return config_; }

    /**
     * Enroll a tenant's evaluation keys: serialize them to cold
     * storage and return their content fingerprint. Re-enrolling
     * byte-identical keys is a no-op; different keys replace the old
     * material (dropping any resident copy). The caller's `keys` is
     * not retained.
     */
    tfhe::KeyFingerprint enroll(const TenantId &tenant,
                                const tfhe::EvaluationKeys &keys);

    /**
     * Hand out the tenant's materialized keys, warming them up from
     * cold storage on a miss (measured, counted) and refreshing their
     * LRU position. May evict the least-recently-acquired other
     * tenant to stay within maxResident. Throws std::out_of_range for
     * a tenant that was never enrolled.
     */
    std::shared_ptr<const tfhe::EvaluationKeys>
    acquire(const TenantId &tenant);

    /** Drop the registry's materialized reference (if any) without
     *  forgetting the enrollment — the next acquire() warms up again.
     *  Counts as an eviction. */
    void release(const TenantId &tenant);

    bool enrolled(const TenantId &tenant) const;

    /** True while the registry itself holds materialized keys. */
    bool resident(const TenantId &tenant) const;

    std::optional<tfhe::KeyFingerprint>
    fingerprint(const TenantId &tenant) const;

    TenantRegistryStats stats() const;

  private:
    struct Entry
    {
        tfhe::KeyFingerprint fp = 0;
        std::string coldBytes; //!< canonical serialized keys
        std::shared_ptr<const tfhe::EvaluationKeys> keys; //!< if resident
        std::list<TenantId>::iterator lruPos; //!< valid iff resident
    };

    /** Drop `it`'s materialized keys. Caller holds mu_. */
    void evictLocked(std::map<TenantId, Entry>::iterator it);

    const TenantRegistryConfig config_;

    mutable std::mutex mu_;
    std::map<TenantId, Entry> entries_;
    std::list<TenantId> lru_; //!< front = most recently acquired
    std::uint64_t hits_ = 0;
    std::uint64_t warmUps_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t residentBytes_ = 0;
    double lastWarmUpUs_ = 0;

    telemetry::Counter &mHits_;
    telemetry::Counter &mWarmUps_;
    telemetry::Counter &mEvictions_;
    telemetry::Histogram &mWarmUpUs_;
    telemetry::Gauge &mResident_;
    telemetry::Gauge &mResidentBytes_;
    telemetry::Gauge &mCapacity_;
};

} // namespace morphling::service

#endif // MORPHLING_SERVICE_TENANT_REGISTRY_H
