/**
 * @file
 * Lowering circuits to compiled Programs.
 *
 * Each topological level of a circuit is a set of mutually independent
 * bootstraps; lowering groups them by LUT (all gate nodes share the
 * one sign LUT; Lut nodes group per registered table) and compiles
 * each group into one compiler::Program batch via
 * SwScheduler::scheduleBootstrapBatch. The result is a Program DAG
 * with explicit inter-level ciphertext dependencies: level L's slot
 * inputs are linear combinations (tfhe::gateLinear / plain wire reads)
 * of level < L outputs, which exec::CircuitExecutor materializes and
 * feeds to any functional ExecutionBackend.
 */

#ifndef MORPHLING_CIRCUIT_LOWERING_H
#define MORPHLING_CIRCUIT_LOWERING_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "compiler/program.h"
#include "compiler/program_cache.h"
#include "compiler/sw_scheduler.h"

namespace morphling::circuit {

/** One compiled batch: every bootstrapped node of one level that
 *  shares one LUT, in ascending node order (slot k of the program is
 *  nodes[k]). */
struct LoweredStep
{
    unsigned level = 0;

    /** Gate bootstraps (exec::Job::sign) vs programmable bootstraps
     *  (exec::Job::batch). */
    bool signLut = false;

    /** The registered table of a LUT step; -1 for the sign step. */
    LutId lut = -1;

    /** Node of each blind-rotation slot, ascending. */
    std::vector<Wire> nodes;

    /** The Job::lut storage: {boolMu} for the sign step, the table's
     *  torus entries otherwise. Owned here so Jobs stay non-owning. */
    std::vector<tfhe::Torus32> lutEntries;

    /** scheduleBootstrapBatch(nodes.size()). */
    compiler::Program program;
};

/** The compiled Program DAG of one circuit. The source circuit must
 *  outlive it (the executor walks nodes for linear combinations). */
struct LoweredCircuit
{
    const Circuit *circuit = nullptr;

    /** steps[l] holds level l+1's batches (level 0 has no
     *  bootstraps). Steps within a level are independent; levels are
     *  strictly ordered. */
    std::vector<std::vector<LoweredStep>> levels;

    std::uint64_t totalBootstraps = 0;

    unsigned numLevels() const
    {
        return static_cast<unsigned>(levels.size());
    }
};

/**
 * Lower a circuit against a scheduler's batching geometry. When a
 * program disk cache is given, each step's batch Program is loaded
 * from it when a valid entry exists and stored after compilation
 * otherwise, so cold processes skip compilation of familiar batch
 * shapes (docs/service.md). The cache is consulted single-threaded by
 * the caller's locking discipline.
 */
LoweredCircuit lower(const Circuit &circuit,
                     const compiler::SwScheduler &scheduler,
                     compiler::ProgramDiskCache *cache = nullptr);

} // namespace morphling::circuit

#endif // MORPHLING_CIRCUIT_LOWERING_H
