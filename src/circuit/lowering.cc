#include "lowering.h"

#include <map>

#include "common/logging.h"

namespace morphling::circuit {

namespace {

/** Compile one batch Program, going through the disk cache when one
 *  is attached (hit = compilation skipped; any rejection falls back
 *  to a fresh compile whose result refreshes the entry). */
compiler::Program
compileBatch(const compiler::SwScheduler &scheduler,
             std::uint64_t count, compiler::ProgramDiskCache *cache)
{
    if (cache == nullptr)
        return scheduler.scheduleBootstrapBatch(count);
    const auto key = compiler::ProgramCacheKey::forBatch(
        scheduler.params(), scheduler.config(), count);
    std::string why;
    if (auto program = cache->load(key, &why))
        return std::move(*program);
    auto program = scheduler.scheduleBootstrapBatch(count);
    cache->store(key, program);
    return program;
}

} // namespace

LoweredCircuit
lower(const Circuit &circuit, const compiler::SwScheduler &scheduler,
      compiler::ProgramDiskCache *cache)
{
    LoweredCircuit lowered;
    lowered.circuit = &circuit;
    lowered.levels.resize(circuit.bootstrapDepth());

    const auto levels = circuit.levels();
    // Per level, nodes grouped by LUT key: -1 = the shared sign LUT of
    // every gate node, otherwise the Lut node's table id. std::map
    // keeps step order deterministic (sign step first, then tables in
    // id order).
    std::vector<std::map<LutId, std::vector<Wire>>> groups(
        lowered.levels.size());
    for (Wire w = 0; w < static_cast<Wire>(circuit.numNodes()); ++w) {
        const auto &n = circuit.node(w);
        if (costOf(n.op) == 0)
            continue;
        const LutId key = n.op == Op::Lut ? n.lut : -1;
        groups[levels[w] - 1][key].push_back(w);
    }

    for (std::size_t l = 0; l < groups.size(); ++l) {
        panic_if(groups[l].empty(), "level ", l + 1,
                 " has no bootstraps (levelization bug)");
        for (auto &[key, nodes] : groups[l]) {
            LoweredStep step;
            step.level = static_cast<unsigned>(l + 1);
            step.signLut = key < 0;
            step.lut = key;
            step.nodes = std::move(nodes);
            step.lutEntries =
                key < 0 ? std::vector<tfhe::Torus32>{tfhe::boolMu()}
                        : circuit.lutTable(key).torus;
            step.program =
                compileBatch(scheduler, step.nodes.size(), cache);
            lowered.totalBootstraps += step.nodes.size();
            lowered.levels[l].push_back(std::move(step));
        }
    }

    panic_if(lowered.totalBootstraps != circuit.bootstrapCount(),
             "lowering covered ", lowered.totalBootstraps, " of ",
             circuit.bootstrapCount(), " bootstraps");
    return lowered;
}

} // namespace morphling::circuit
