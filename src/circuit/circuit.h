/**
 * @file
 * The TFHE circuit IR: whole encrypted programs as first-class objects.
 *
 * A circuit is a typed netlist over SSA wire ids. Two wire types
 * mirror the two encodings of tfhe/encoding.h:
 *  - bit wires (+-1/8 boolean convention), produced by bit inputs,
 *    constants and gates — every two-input gate is one linear
 *    combination plus one *sign* bootstrap;
 *  - word wires (padded-integer convention), produced by word inputs
 *    and multi-bit LUT nodes — each LUT node is one programmable
 *    bootstrap through a table registered on the circuit.
 *
 * The IR carries its own topological levelization (bootstrapped nodes
 * advance a level; linear NOT stays on its inputs' level), a text
 * format for loading circuits from files, plaintext and gate-by-gate
 * encrypted evaluation (the ground truth the executor is checked
 * against bit-for-bit), and lowering to compiled compiler::Programs
 * (lowering.h) executed by exec::CircuitExecutor over any functional
 * ExecutionBackend.
 */

#ifndef MORPHLING_CIRCUIT_CIRCUIT_H
#define MORPHLING_CIRCUIT_CIRCUIT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compiler/program.h"
#include "tfhe/encoding.h"

namespace morphling::circuit {

/** SSA wire id: the index of the node that produces the wire. */
using Wire = int;

/** Index of a LUT table registered on a circuit. */
using LutId = int;

/** Node kinds. Sources and Not are free; gates cost one sign
 *  bootstrap, Lut one programmable bootstrap. */
enum class Op : std::uint8_t
{
    BitInput,  //!< source: one encrypted bit
    WordInput, //!< source: one padded-integer ciphertext
    Const,     //!< trivial (noiseless) constant bit
    Not,       //!< linear negation, free
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    Lut, //!< word -> word through a registered table
};

/** The bootstrap table of a Lut node. */
struct LutTable
{
    /** Message space p of a padded-integer table; 0 for a raw torus
     *  table (opaque entries, no plaintext semantics). */
    std::uint32_t space = 0;

    /** f(m) for m in [0, space); empty for raw tables. */
    std::vector<std::uint32_t> plain;

    /** The bootstrap LUT entries (what the blind rotation consumes). */
    std::vector<tfhe::Torus32> torus;
};

/** One circuit node. */
struct Node
{
    Op op = Op::BitInput;
    Wire a = -1;
    Wire b = -1;
    bool constValue = false;
    LutId lut = -1;          //!< Op::Lut only
    std::uint32_t space = 0; //!< word wires: message space (0 = raw)
};

/**
 * A typed encrypted-program netlist. Wires are created in dependency
 * order by construction; inputs are numbered in creation order
 * (mixing bit and word inputs freely).
 */
class Circuit
{
  public:
    /** Add a primary bit input; returns its wire. */
    Wire bitInput();

    /** Add a primary word input over a padded message space (0 for an
     *  opaque/raw word, usable only with raw torus tables). */
    Wire wordInput(std::uint32_t space);

    /** Add a constant bit wire. */
    Wire constant(bool value);

    /** Add a two-input bootstrapped gate over bit wires. */
    Wire gate(tfhe::BoolGate op, Wire a, Wire b);

    /** Add a linear (free) negation of a bit wire. */
    Wire invert(Wire a);

    /** select ? on_true : on_false, desugared at construction into
     *  not/and/and/or (three bootstraps, two levels) — exactly the
     *  decomposition of tfhe::gateMux, so gate-by-gate evaluation
     *  stays bit-identical. Occupies four wire ids; returns the
     *  last (the Or). */
    Wire mux(Wire select, Wire on_true, Wire on_false);

    /** Register a padded-integer LUT: entry m of `table` is f(m),
     *  encoded over the same space so LUT outputs chain. */
    LutId registerLut(std::uint32_t space,
                      const std::vector<std::uint32_t> &table);

    /** Register a raw torus table (e.g. the service's pre-encoded
     *  LUTs). No plaintext semantics: evaluatePlain panics on circuits
     *  using it. */
    LutId registerTorusLut(std::vector<tfhe::Torus32> entries);

    /** Add a programmable bootstrap of a word wire through a
     *  registered table; returns a word wire over the table's space. */
    Wire applyLut(LutId lut, Wire a);

    /** Mark a wire as a circuit output (any type; repeats allowed). */
    void markOutput(Wire wire);

    unsigned numInputs() const { return numInputs_; }
    unsigned numNodes() const
    {
        return static_cast<unsigned>(nodes_.size());
    }
    const Node &node(Wire w) const;
    const std::vector<Wire> &outputs() const { return outputs_; }
    unsigned numLuts() const
    {
        return static_cast<unsigned>(luts_.size());
    }
    const LutTable &lutTable(LutId id) const;

    /** True when the wire carries a padded-integer word. */
    bool isWord(Wire w) const;

    /** Total bootstraps one evaluation costs. */
    std::uint64_t bootstrapCount() const;

    /** Depth in bootstrap levels (the critical path no batching can
     *  parallelize across). */
    unsigned bootstrapDepth() const;

    /** Topological bootstrap level of every node: bootstrapped nodes
     *  sit one past their deepest input; sources and Not stay on their
     *  inputs' level (level 0 for sources). */
    std::vector<unsigned> levels() const;

    /**
     * Evaluate on plaintext values, one per input in creation order:
     * 0/1 for bit inputs, m in [0, space) for word inputs. Returns the
     * output wires' values. Panics on circuits with raw torus tables.
     */
    std::vector<std::uint32_t>
    evaluatePlain(const std::vector<std::uint32_t> &inputs) const;

    /**
     * Gate-by-gate homomorphic evaluation via the tfhe/encoding.h
     * gate API — the bit-identical reference for the lowered
     * executor path (exec::CircuitExecutor).
     */
    std::vector<tfhe::LweCiphertext>
    evaluateEncrypted(const tfhe::KeySet &keys,
                      const std::vector<tfhe::LweCiphertext> &inputs)
        const;

    /** Compile to a schedulable workload: one stage per bootstrap
     *  level, `count` independent evaluations batched together. */
    compiler::Workload toWorkload(const std::string &name,
                                  std::uint64_t count = 1) const;

    /** @{
     * Text format (docs/circuit_ir.md): a "morphling-circuit v1"
     * header, then one directive per line — `table`/`ttable` register
     * LUTs, `in`/`win`/`const`/`not`/`and`/`or`/`xor`/`nand`/`nor`/
     * `xnor`/`lut` create wires in id order, `mux` is loader sugar for
     * the four-wire desugaring, `out` marks outputs. '#' starts a
     * comment. toText() -> fromText() round-trips exactly.
     */
    std::string toText() const;

    /** Parse; on malformed input returns nullopt and, when `error` is
     *  non-null, a one-line diagnostic naming the offending line. */
    static std::optional<Circuit> tryFromText(const std::string &text,
                                              std::string *error =
                                                  nullptr);

    /** Parse or panic (for trusted/embedded circuit text). */
    static Circuit fromText(const std::string &text);
    /** @} */

  private:
    Wire addNode(Node node);

    std::vector<Node> nodes_;
    std::vector<LutTable> luts_;
    std::vector<Wire> outputs_;
    unsigned numInputs_ = 0;
};

/** The tfhe::BoolGate of a gate node op; panics for non-gate ops. */
tfhe::BoolGate toBoolGate(Op op);

/** Bootstraps a node costs (0 for sources, Const and Not). */
unsigned costOf(Op op);

// --- Standard builders ---------------------------------------------------

/**
 * Ripple-carry adder over little-endian bit vectors; appends sum wires
 * (same width) to `sum` and returns the carry-out wire.
 */
Wire buildRippleAdder(Circuit &circuit, const std::vector<Wire> &a,
                      const std::vector<Wire> &b, std::vector<Wire> &sum);

/** a >= b over little-endian unsigned bit vectors (one output wire). */
Wire buildGreaterEqual(Circuit &circuit, const std::vector<Wire> &a,
                       const std::vector<Wire> &b);

/** a == b over bit vectors (one output wire). */
Wire buildEqual(Circuit &circuit, const std::vector<Wire> &a,
                const std::vector<Wire> &b);

} // namespace morphling::circuit

#endif // MORPHLING_CIRCUIT_CIRCUIT_H
