#include "circuit.h"

#include <sstream>

#include "common/logging.h"
#include "tfhe/bootstrap.h"

namespace morphling::circuit {

using tfhe::BoolGate;
using tfhe::KeySet;
using tfhe::LweCiphertext;

tfhe::BoolGate
toBoolGate(Op op)
{
    switch (op) {
      case Op::And:
        return BoolGate::And;
      case Op::Or:
        return BoolGate::Or;
      case Op::Xor:
        return BoolGate::Xor;
      case Op::Nand:
        return BoolGate::Nand;
      case Op::Nor:
        return BoolGate::Nor;
      case Op::Xnor:
        return BoolGate::Xnor;
      default:
        panic("node op ", static_cast<int>(op), " is not a bool gate");
    }
}

unsigned
costOf(Op op)
{
    switch (op) {
      case Op::BitInput:
      case Op::WordInput:
      case Op::Const:
      case Op::Not:
        return 0;
      default:
        return 1;
    }
}

Wire
Circuit::addNode(Node node)
{
    nodes_.push_back(node);
    return static_cast<Wire>(nodes_.size() - 1);
}

Wire
Circuit::bitInput()
{
    ++numInputs_;
    Node n;
    n.op = Op::BitInput;
    return addNode(n);
}

Wire
Circuit::wordInput(std::uint32_t space)
{
    ++numInputs_;
    Node n;
    n.op = Op::WordInput;
    n.space = space;
    return addNode(n);
}

Wire
Circuit::constant(bool value)
{
    Node n;
    n.op = Op::Const;
    n.constValue = value;
    return addNode(n);
}

Wire
Circuit::gate(BoolGate op, Wire a, Wire b)
{
    panic_if(a < 0 || a >= static_cast<Wire>(nodes_.size()),
             "dangling wire a");
    panic_if(b < 0 || b >= static_cast<Wire>(nodes_.size()),
             "dangling wire b");
    panic_if(isWord(a) || isWord(b), "gate ", tfhe::boolGateName(op),
             " needs bit wires");
    Node n;
    switch (op) {
      case BoolGate::And:
        n.op = Op::And;
        break;
      case BoolGate::Or:
        n.op = Op::Or;
        break;
      case BoolGate::Xor:
        n.op = Op::Xor;
        break;
      case BoolGate::Nand:
        n.op = Op::Nand;
        break;
      case BoolGate::Nor:
        n.op = Op::Nor;
        break;
      case BoolGate::Xnor:
        n.op = Op::Xnor;
        break;
    }
    n.a = a;
    n.b = b;
    return addNode(n);
}

Wire
Circuit::invert(Wire a)
{
    panic_if(a < 0 || a >= static_cast<Wire>(nodes_.size()),
             "dangling wire");
    panic_if(isWord(a), "not needs a bit wire");
    Node n;
    n.op = Op::Not;
    n.a = a;
    return addNode(n);
}

Wire
Circuit::mux(Wire select, Wire on_true, Wire on_false)
{
    const Wire not_select = invert(select);
    const Wire picked_true = gate(BoolGate::And, select, on_true);
    const Wire picked_false = gate(BoolGate::And, not_select, on_false);
    return gate(BoolGate::Or, picked_true, picked_false);
}

LutId
Circuit::registerLut(std::uint32_t space,
                     const std::vector<std::uint32_t> &table)
{
    panic_if(space == 0, "padded LUT needs a nonzero message space");
    panic_if(table.size() != space, "LUT over a ", space,
             "-value space needs ", space, " entries, got ",
             table.size());
    LutTable t;
    t.space = space;
    t.plain = table;
    t.torus.reserve(space);
    for (std::uint32_t m : table)
        t.torus.push_back(tfhe::encodePadded(m % space, space));
    luts_.push_back(std::move(t));
    return static_cast<LutId>(luts_.size() - 1);
}

LutId
Circuit::registerTorusLut(std::vector<tfhe::Torus32> entries)
{
    panic_if(entries.empty(), "empty torus LUT");
    LutTable t;
    t.torus = std::move(entries);
    luts_.push_back(std::move(t));
    return static_cast<LutId>(luts_.size() - 1);
}

Wire
Circuit::applyLut(LutId lut, Wire a)
{
    panic_if(lut < 0 || lut >= static_cast<LutId>(luts_.size()),
             "unknown LUT ", lut);
    panic_if(a < 0 || a >= static_cast<Wire>(nodes_.size()),
             "dangling wire");
    panic_if(!isWord(a), "lut needs a word wire");
    const auto &table = luts_[static_cast<std::size_t>(lut)];
    const std::uint32_t in_space = nodes_[a].space;
    panic_if(table.space != 0 && in_space != 0 &&
                 table.space != in_space,
             "LUT over a ", table.space,
             "-value space applied to a wire over ", in_space);
    Node n;
    n.op = Op::Lut;
    n.a = a;
    n.lut = lut;
    n.space = table.space;
    return addNode(n);
}

void
Circuit::markOutput(Wire wire)
{
    panic_if(wire < 0 || wire >= static_cast<Wire>(nodes_.size()),
             "dangling output wire");
    outputs_.push_back(wire);
}

const Node &
Circuit::node(Wire w) const
{
    panic_if(w < 0 || w >= static_cast<Wire>(nodes_.size()),
             "dangling wire ", w);
    return nodes_[w];
}

const LutTable &
Circuit::lutTable(LutId id) const
{
    panic_if(id < 0 || id >= static_cast<LutId>(luts_.size()),
             "unknown LUT ", id);
    return luts_[static_cast<std::size_t>(id)];
}

bool
Circuit::isWord(Wire w) const
{
    const Op op = node(w).op;
    return op == Op::WordInput || op == Op::Lut;
}

std::uint64_t
Circuit::bootstrapCount() const
{
    std::uint64_t total = 0;
    for (const auto &n : nodes_)
        total += costOf(n.op);
    return total;
}

std::vector<unsigned>
Circuit::levels() const
{
    std::vector<unsigned> level(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const auto &n = nodes_[i];
        unsigned in_level = 0;
        for (Wire w : {n.a, n.b}) {
            if (w >= 0)
                in_level = std::max(in_level, level[w]);
        }
        level[i] = in_level + (costOf(n.op) > 0 ? 1 : 0);
    }
    return level;
}

unsigned
Circuit::bootstrapDepth() const
{
    unsigned depth = 0;
    for (unsigned l : levels())
        depth = std::max(depth, l);
    return depth;
}

std::vector<std::uint32_t>
Circuit::evaluatePlain(const std::vector<std::uint32_t> &inputs) const
{
    panic_if(inputs.size() != numInputs_, "expected ", numInputs_,
             " inputs, got ", inputs.size());
    std::vector<std::uint32_t> value(nodes_.size(), 0);
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const auto &n = nodes_[i];
        switch (n.op) {
          case Op::BitInput:
            value[i] = inputs[next_input++];
            panic_if(value[i] > 1, "bit input ", i, " is ", value[i]);
            break;
          case Op::WordInput:
            value[i] = inputs[next_input++];
            panic_if(n.space != 0 && value[i] >= n.space,
                     "word input ", i, " is ", value[i],
                     " over a ", n.space, "-value space");
            break;
          case Op::Const:
            value[i] = n.constValue ? 1 : 0;
            break;
          case Op::Not:
            value[i] = value[n.a] ^ 1u;
            break;
          case Op::And:
            value[i] = value[n.a] & value[n.b];
            break;
          case Op::Or:
            value[i] = value[n.a] | value[n.b];
            break;
          case Op::Xor:
            value[i] = value[n.a] ^ value[n.b];
            break;
          case Op::Nand:
            value[i] = (value[n.a] & value[n.b]) ^ 1u;
            break;
          case Op::Nor:
            value[i] = (value[n.a] | value[n.b]) ^ 1u;
            break;
          case Op::Xnor:
            value[i] = (value[n.a] ^ value[n.b]) ^ 1u;
            break;
          case Op::Lut: {
            const auto &table = luts_[static_cast<std::size_t>(n.lut)];
            panic_if(table.space == 0,
                     "raw torus LUT has no plaintext semantics");
            value[i] = table.plain[value[n.a] % table.space];
            break;
          }
        }
    }
    std::vector<std::uint32_t> out;
    out.reserve(outputs_.size());
    for (Wire w : outputs_)
        out.push_back(value[w]);
    return out;
}

std::vector<LweCiphertext>
Circuit::evaluateEncrypted(const KeySet &keys,
                           const std::vector<LweCiphertext> &inputs)
    const
{
    panic_if(inputs.size() != numInputs_, "expected ", numInputs_,
             " input ciphertexts, got ", inputs.size());
    std::vector<LweCiphertext> value(nodes_.size());
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const auto &n = nodes_[i];
        switch (n.op) {
          case Op::BitInput:
          case Op::WordInput:
            value[i] = inputs[next_input++];
            break;
          case Op::Const:
            value[i] = tfhe::trivialBit(keys, n.constValue);
            break;
          case Op::Not:
            value[i] = tfhe::gateNot(value[n.a]);
            break;
          case Op::And:
          case Op::Or:
          case Op::Xor:
          case Op::Nand:
          case Op::Nor:
          case Op::Xnor:
            value[i] = tfhe::gateApply(keys, toBoolGate(n.op),
                                       value[n.a], value[n.b]);
            break;
          case Op::Lut: {
            const auto &table = luts_[static_cast<std::size_t>(n.lut)];
            value[i] = tfhe::programmableBootstrap(keys, value[n.a],
                                                   table.torus);
            break;
          }
        }
    }
    std::vector<LweCiphertext> out;
    out.reserve(outputs_.size());
    for (Wire w : outputs_)
        out.push_back(value[w]);
    return out;
}

compiler::Workload
Circuit::toWorkload(const std::string &name, std::uint64_t count) const
{
    // One stage per bootstrap level; all `count` evaluations of the
    // circuit run the same level concurrently.
    const auto lv = levels();
    std::vector<std::uint64_t> per_level(bootstrapDepth() + 1, 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        per_level[lv[i]] += costOf(nodes_[i].op);

    compiler::Workload w;
    w.name = name;
    for (std::size_t level = 1; level < per_level.size(); ++level) {
        if (per_level[level] == 0)
            continue;
        w.stages.push_back({per_level[level] * count, 0});
    }
    return w;
}

// --- Text format ---------------------------------------------------------

namespace {

constexpr const char *kHeader = "morphling-circuit v1";

const char *
opDirective(Op op)
{
    switch (op) {
      case Op::BitInput:
        return "in";
      case Op::WordInput:
        return "win";
      case Op::Const:
        return "const";
      case Op::Not:
        return "not";
      case Op::And:
        return "and";
      case Op::Or:
        return "or";
      case Op::Xor:
        return "xor";
      case Op::Nand:
        return "nand";
      case Op::Nor:
        return "nor";
      case Op::Xnor:
        return "xnor";
      case Op::Lut:
        return "lut";
    }
    panic("unknown op");
}

} // namespace

std::string
Circuit::toText() const
{
    std::ostringstream out;
    out << kHeader << "\n";
    for (const auto &t : luts_) {
        if (t.space != 0) {
            out << "table " << t.space;
            for (std::uint32_t v : t.plain)
                out << ' ' << v;
        } else {
            out << "ttable " << t.torus.size();
            for (tfhe::Torus32 v : t.torus)
                out << ' ' << static_cast<std::uint32_t>(v);
        }
        out << "\n";
    }
    for (const auto &n : nodes_) {
        out << opDirective(n.op);
        switch (n.op) {
          case Op::BitInput:
            break;
          case Op::WordInput:
            out << ' ' << n.space;
            break;
          case Op::Const:
            out << ' ' << (n.constValue ? 1 : 0);
            break;
          case Op::Not:
            out << ' ' << n.a;
            break;
          case Op::Lut:
            out << ' ' << n.lut << ' ' << n.a;
            break;
          default:
            out << ' ' << n.a << ' ' << n.b;
            break;
        }
        out << "\n";
    }
    for (Wire w : outputs_)
        out << "out " << w << "\n";
    return out.str();
}

std::optional<Circuit>
Circuit::tryFromText(const std::string &text, std::string *error)
{
    auto fail = [&](unsigned line_no, const std::string &what) {
        if (error != nullptr) {
            *error = "circuit text line " + std::to_string(line_no) +
                     ": " + what;
        }
        return std::nullopt;
    };

    Circuit c;
    std::istringstream in(text);
    std::string line;
    unsigned line_no = 0;
    bool have_header = false;

    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.resize(hash);
        std::istringstream tokens(line);
        std::string word;
        if (!(tokens >> word))
            continue; // blank or comment-only line
        if (!have_header) {
            std::string version;
            tokens >> version;
            if (word + " " + version != kHeader)
                return fail(line_no, "expected header \"" +
                                         std::string(kHeader) + "\"");
            have_header = true;
            continue;
        }

        // Every remaining directive takes small non-negative integer
        // operands.
        std::vector<long long> args;
        long long v = 0;
        while (tokens >> v)
            args.push_back(v);
        if (!tokens.eof())
            return fail(line_no, "malformed operand");
        const auto wire_ok = [&](long long w) {
            return w >= 0 && w < static_cast<long long>(c.numNodes());
        };
        const auto bit_wire_ok = [&](long long w) {
            return wire_ok(w) && !c.isWord(static_cast<Wire>(w));
        };

        if (word == "table") {
            if (args.size() < 2 || args[0] <= 0 ||
                args.size() != static_cast<std::size_t>(args[0]) + 1)
                return fail(line_no, "table needs <space> entries");
            std::vector<std::uint32_t> entries;
            for (std::size_t i = 1; i < args.size(); ++i) {
                if (args[i] < 0 || args[i] >= args[0])
                    return fail(line_no, "table entry out of range");
                entries.push_back(static_cast<std::uint32_t>(args[i]));
            }
            c.registerLut(static_cast<std::uint32_t>(args[0]), entries);
        } else if (word == "ttable") {
            if (args.size() < 2 || args[0] <= 0 ||
                args.size() != static_cast<std::size_t>(args[0]) + 1)
                return fail(line_no, "ttable needs <count> entries");
            std::vector<tfhe::Torus32> entries;
            for (std::size_t i = 1; i < args.size(); ++i) {
                if (args[i] < 0 || args[i] > 0xFFFFFFFFll)
                    return fail(line_no, "ttable entry out of range");
                entries.push_back(static_cast<tfhe::Torus32>(
                    static_cast<std::uint32_t>(args[i])));
            }
            c.registerTorusLut(std::move(entries));
        } else if (word == "in") {
            if (!args.empty())
                return fail(line_no, "in takes no operands");
            c.bitInput();
        } else if (word == "win") {
            if (args.size() != 1 || args[0] < 0)
                return fail(line_no, "win needs a message space");
            c.wordInput(static_cast<std::uint32_t>(args[0]));
        } else if (word == "const") {
            if (args.size() != 1 || (args[0] != 0 && args[0] != 1))
                return fail(line_no, "const needs 0 or 1");
            c.constant(args[0] == 1);
        } else if (word == "not") {
            if (args.size() != 1 || !bit_wire_ok(args[0]))
                return fail(line_no, "not needs one existing bit wire");
            c.invert(static_cast<Wire>(args[0]));
        } else if (word == "mux") {
            if (args.size() != 3 || !bit_wire_ok(args[0]) ||
                !bit_wire_ok(args[1]) || !bit_wire_ok(args[2]))
                return fail(line_no, "mux needs three existing bit "
                                     "wires");
            c.mux(static_cast<Wire>(args[0]),
                  static_cast<Wire>(args[1]),
                  static_cast<Wire>(args[2]));
        } else if (word == "lut") {
            if (args.size() != 2 ||
                args[0] < 0 ||
                args[0] >= static_cast<long long>(c.numLuts()) ||
                !wire_ok(args[1]) ||
                !c.isWord(static_cast<Wire>(args[1])))
                return fail(line_no, "lut needs a registered table and "
                                     "an existing word wire");
            const auto &table =
                c.lutTable(static_cast<LutId>(args[0]));
            const std::uint32_t in_space =
                c.node(static_cast<Wire>(args[1])).space;
            if (table.space != 0 && in_space != 0 &&
                table.space != in_space)
                return fail(line_no, "lut space mismatch");
            c.applyLut(static_cast<LutId>(args[0]),
                       static_cast<Wire>(args[1]));
        } else if (word == "out") {
            if (args.size() != 1 || !wire_ok(args[0]))
                return fail(line_no, "out needs one existing wire");
            c.markOutput(static_cast<Wire>(args[0]));
        } else {
            bool matched = false;
            for (const BoolGate g :
                 {BoolGate::And, BoolGate::Or, BoolGate::Xor,
                  BoolGate::Nand, BoolGate::Nor, BoolGate::Xnor}) {
                if (word != tfhe::boolGateName(g))
                    continue;
                if (args.size() != 2 || !bit_wire_ok(args[0]) ||
                    !bit_wire_ok(args[1]))
                    return fail(line_no, word + " needs two existing "
                                                "bit wires");
                c.gate(g, static_cast<Wire>(args[0]),
                       static_cast<Wire>(args[1]));
                matched = true;
                break;
            }
            if (!matched)
                return fail(line_no, "unknown directive \"" + word +
                                         "\"");
        }
    }

    if (!have_header)
        return fail(line_no, "empty input (missing header)");
    return c;
}

Circuit
Circuit::fromText(const std::string &text)
{
    std::string error;
    auto c = tryFromText(text, &error);
    panic_if(!c.has_value(), error);
    return std::move(*c);
}

// --- Standard builders ---------------------------------------------------

Wire
buildRippleAdder(Circuit &circuit, const std::vector<Wire> &a,
                 const std::vector<Wire> &b, std::vector<Wire> &sum)
{
    panic_if(a.size() != b.size(), "operand width mismatch");
    Wire carry = circuit.constant(false);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto a_xor_b = circuit.gate(BoolGate::Xor, a[i], b[i]);
        sum.push_back(circuit.gate(BoolGate::Xor, a_xor_b, carry));
        const auto gen = circuit.gate(BoolGate::And, a[i], b[i]);
        const auto prop = circuit.gate(BoolGate::And, a_xor_b, carry);
        carry = circuit.gate(BoolGate::Or, gen, prop);
    }
    return carry;
}

Wire
buildGreaterEqual(Circuit &circuit, const std::vector<Wire> &a,
                  const std::vector<Wire> &b)
{
    panic_if(a.size() != b.size(), "operand width mismatch");
    // From LSB up: ge = (a_i > b_i) | ((a_i == b_i) & ge_below);
    // a_i > b_i  ==  a_i & !b_i.
    Wire ge = circuit.constant(true);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto not_b = circuit.invert(b[i]);
        const auto gt = circuit.gate(BoolGate::And, a[i], not_b);
        const auto eq = circuit.gate(BoolGate::Xnor, a[i], b[i]);
        const auto keep = circuit.gate(BoolGate::And, eq, ge);
        ge = circuit.gate(BoolGate::Or, gt, keep);
    }
    return ge;
}

Wire
buildEqual(Circuit &circuit, const std::vector<Wire> &a,
           const std::vector<Wire> &b)
{
    panic_if(a.size() != b.size() || a.empty(),
             "operand width mismatch");
    Wire acc = circuit.gate(BoolGate::Xnor, a[0], b[0]);
    for (std::size_t i = 1; i < a.size(); ++i) {
        const auto bit_eq = circuit.gate(BoolGate::Xnor, a[i], b[i]);
        acc = circuit.gate(BoolGate::And, acc, bit_eq);
    }
    return acc;
}

} // namespace morphling::circuit
