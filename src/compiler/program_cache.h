/**
 * @file
 * On-disk cache of compiled Programs, so a cold service start skips
 * scheduling/compilation for batch shapes it has served before.
 *
 * A compiled bootstrap-batch Program is fully determined by the TFHE
 * parameter set, the scheduler's batching geometry and the batch size
 * — not by LUT contents (the instruction stream encodes slots, the
 * test polynomial is job data). The cache therefore keys entries by
 * exactly that triple and stores the hardened framed container
 * (Program::serializeFramed), which tryDeserializeFramed re-validates
 * on every load: a corrupt, truncated or stale file is reported and
 * treated as a miss, never trusted.
 *
 * Thread safety: none. The service consults the cache under its
 * program-cache mutex; standalone users must serialize externally.
 */

#ifndef MORPHLING_COMPILER_PROGRAM_CACHE_H
#define MORPHLING_COMPILER_PROGRAM_CACHE_H

#include <cstdint>
#include <optional>
#include <string>

#include "compiler/program.h"
#include "compiler/sw_scheduler.h"
#include "tfhe/params.h"

namespace morphling::compiler {

/** Identity of one cached Program: everything its instruction stream
 *  depends on. */
struct ProgramCacheKey
{
    std::string paramsName;  //!< TfheParams::name
    SchedulerConfig sched;   //!< batching geometry
    std::uint64_t batchSize = 0;

    /** Deterministic file name encoding every key component (param
     *  set sanitized to [A-Za-z0-9_]). */
    std::string fileName() const;

    /** The key for one scheduler's bootstrap batch of `count`. */
    static ProgramCacheKey forBatch(const tfhe::TfheParams &params,
                                    const SchedulerConfig &sched,
                                    std::uint64_t count);
};

/**
 * A directory of framed Program containers. Construction creates the
 * directory (recursively); a directory that cannot be created disables
 * the cache (every load misses, every store is dropped) with a warn()
 * instead of failing the service.
 */
class ProgramDiskCache
{
  public:
    explicit ProgramDiskCache(std::string dir);

    /** True when the backing directory is usable. */
    bool enabled() const { return enabled_; }
    const std::string &dir() const { return dir_; }

    /**
     * Load a cached Program. Returns nullopt on a missing file, an
     * unreadable file, a container tryDeserializeFramed rejects, or a
     * decoded program whose blind-rotation count disagrees with the
     * key (a stale entry from an incompatible build); the reason lands
     * in *why when given.
     */
    std::optional<Program> load(const ProgramCacheKey &key,
                                std::string *why = nullptr);

    /** Persist a compiled Program under its key (atomic rename so a
     *  concurrent reader never sees a half-written file). Returns
     *  false (with a warn()) when the write fails. */
    bool store(const ProgramCacheKey &key, const Program &program);

    // Counters for tests and telemetry (per-instance, monotonic).
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t rejects() const { return rejects_; }
    std::uint64_t stores() const { return stores_; }

  private:
    std::string dir_;
    bool enabled_ = false;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t rejects_ = 0; //!< present but corrupt/stale
    std::uint64_t stores_ = 0;
};

} // namespace morphling::compiler

#endif // MORPHLING_COMPILER_PROGRAM_CACHE_H
