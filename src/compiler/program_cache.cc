#include "program_cache.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/logging.h"

namespace morphling::compiler {

namespace fs = std::filesystem;

namespace {

std::string
sanitized(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out.empty() ? std::string("unnamed") : out;
}

} // namespace

std::string
ProgramCacheKey::fileName() const
{
    std::ostringstream oss;
    oss << "prog_" << sanitized(paramsName) << "_g" << sched.groupSize
        << "x" << sched.numGroups << "_k" << sched.kskReuse << "_n"
        << batchSize << ".mprog";
    return oss.str();
}

ProgramCacheKey
ProgramCacheKey::forBatch(const tfhe::TfheParams &params,
                          const SchedulerConfig &sched,
                          std::uint64_t count)
{
    ProgramCacheKey key;
    key.paramsName = params.name;
    key.sched = sched;
    key.batchSize = count;
    return key;
}

ProgramDiskCache::ProgramDiskCache(std::string dir)
    : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_)) {
        warn("program cache directory '", dir_,
             "' is unusable (", ec.message(),
             "); caching disabled for this run");
        return;
    }
    enabled_ = true;
}

std::optional<Program>
ProgramDiskCache::load(const ProgramCacheKey &key, std::string *why)
{
    auto miss = [&](const std::string &reason) {
        if (why != nullptr)
            *why = reason;
        return std::nullopt;
    };

    if (!enabled_) {
        ++misses_;
        return miss("cache disabled");
    }
    const fs::path path = fs::path(dir_) / key.fileName();
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        ++misses_;
        return miss("no cached entry");
    }

    const auto size = static_cast<std::size_t>(is.tellg());
    if (size == 0 || size % sizeof(std::uint64_t) != 0) {
        ++rejects_;
        return miss("cached file has a non-word-aligned size");
    }
    std::vector<std::uint64_t> words(size / sizeof(std::uint64_t));
    is.seekg(0);
    is.read(reinterpret_cast<char *>(words.data()),
            static_cast<std::streamsize>(size));
    if (!is) {
        ++rejects_;
        return miss("cached file is unreadable");
    }

    std::string error;
    auto program =
        Program::tryDeserializeFramed(key.fileName(), words, &error);
    if (!program.has_value()) {
        ++rejects_;
        return miss("rejected cached container: " + error);
    }
    // Stale-entry guard: the decoded program must actually be the
    // batch the key describes (a schema-compatible file from an older
    // scheduler would decode fine but mean something else).
    if (program->totalBlindRotations() != key.batchSize) {
        ++rejects_;
        std::ostringstream oss;
        oss << "stale cached program: " << program->totalBlindRotations()
            << " blind rotations, key expects " << key.batchSize;
        return miss(oss.str());
    }
    ++hits_;
    return program;
}

bool
ProgramDiskCache::store(const ProgramCacheKey &key,
                        const Program &program)
{
    if (!enabled_)
        return false;
    const auto words = program.serializeFramed();
    const fs::path path = fs::path(dir_) / key.fileName();
    // Write-then-rename so a crash or concurrent cold start never
    // leaves a half-written file under the final name. The temp name
    // embeds this cache instance's address: several services (e.g.
    // per-tenant) may share one directory, and two of them storing
    // the same key must not interleave writes into one temp file.
    std::ostringstream tmp_name;
    tmp_name << path.string() << ".tmp."
             << reinterpret_cast<std::uintptr_t>(this);
    const fs::path tmp = tmp_name.str();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            warn("program cache: cannot write ", tmp.string());
            return false;
        }
        os.write(reinterpret_cast<const char *>(words.data()),
                 static_cast<std::streamsize>(
                     words.size() * sizeof(std::uint64_t)));
        if (!os) {
            warn("program cache: short write to ", tmp.string());
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("program cache: rename to ", path.string(), " failed: ",
             ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    ++stores_;
    return true;
}

} // namespace morphling::compiler
