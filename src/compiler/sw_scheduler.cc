#include "sw_scheduler.h"

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::compiler {

SwScheduler::SwScheduler(const tfhe::TfheParams &params,
                         SchedulerConfig config)
    : params_(params), config_(config)
{
    fatal_if(config.groupSize == 0 || config.numGroups == 0,
             "scheduler needs nonzero group geometry");
    fatal_if(config.numGroups > 16, "group id must fit the encoding");
    fatal_if(config.kskReuse == 0, "kskReuse must be positive");
}

std::uint64_t
SwScheduler::bskBytesPerIteration() const
{
    // One GGSW in the transform domain: (k+1)*l_b*(k+1) polynomials of
    // N/2 complex elements, 8 bytes each (32-bit real + imaginary).
    return params_.polysPerGgsw() * (params_.polyDegree / 2) * 8;
}

std::uint64_t
SwScheduler::kskBytesFor(std::uint64_t count) const
{
    return divCeil(params_.kskBytes() * count,
                   std::uint64_t{config_.kskReuse});
}

void
SwScheduler::emitBootstrapChunk(Program &prog, std::uint8_t group,
                                std::uint16_t count) const
{
    const auto lwe_bytes =
        static_cast<std::uint32_t>((params_.lweDimension + 1) * 4 * count);

    prog.add({Opcode::DmaLoadLwe, group, count, lwe_bytes});
    prog.add({Opcode::VpuModSwitch, group, count, 0});
    prog.add({Opcode::DmaLoadBsk, group, count,
              static_cast<std::uint32_t>(bskBytesPerIteration())});
    prog.add({Opcode::XpuBlindRotate, group, count,
              params_.lweDimension});
    prog.add({Opcode::VpuSampleExtract, group, count, 0});
    prog.add({Opcode::DmaLoadKsk, group, count,
              static_cast<std::uint32_t>(kskBytesFor(count))});
    prog.add({Opcode::VpuKeySwitch, group, count, 0});
    prog.add({Opcode::DmaStoreLwe, group, count, lwe_bytes});
}

Program
SwScheduler::schedule(const Workload &workload) const
{
    Program prog(workload.name);
    std::uint32_t barrier_id = 0;
    // Round-robin assignment persists across stages so short stages
    // still spread over all groups in aggregate.
    std::uint8_t group = 0;

    for (std::size_t s = 0; s < workload.stages.size(); ++s) {
        const auto &stage = workload.stages[s];

        // Linear (P-ALU) work first: split evenly over the groups so
        // all four VPU lane-groups contribute.
        if (stage.linearMacs > 0) {
            const std::uint64_t per_group = divCeil(
                stage.linearMacs, std::uint64_t{config_.numGroups});
            for (std::uint8_t g = 0; g < config_.numGroups; ++g) {
                const std::uint64_t macs = std::min(
                    per_group,
                    stage.linearMacs -
                        std::min(stage.linearMacs,
                                 std::uint64_t{g} * per_group));
                if (macs == 0)
                    continue;
                // Weights: 4 bytes per MAC streamed from HBM.
                prog.add({Opcode::DmaLoadData, g, 0,
                          static_cast<std::uint32_t>(
                              std::min<std::uint64_t>(macs * 4,
                                                      0xFFFFFFFFull))});
                prog.add({Opcode::VpuPAlu, g, 0,
                          static_cast<std::uint32_t>(
                              std::min<std::uint64_t>(macs,
                                                      0xFFFFFFFFull))});
            }
        }

        // Bootstraps over the groups, per the configured interleave.
        std::uint64_t remaining = stage.bootstraps;
        if (config_.interleave == InterleaveMode::kGroupInterleaved) {
            // Rounds of one chunk per group, sized evenly (±1), so
            // every group's chunk sequence has the same length and
            // the groups — and any shards sliced from them — hit the
            // same blind-rotation iteration in the same round.
            while (remaining > 0) {
                const std::uint64_t round_total =
                    std::min<std::uint64_t>(
                        remaining, std::uint64_t{config_.numGroups} *
                                       config_.groupSize);
                const std::uint64_t base =
                    round_total / config_.numGroups;
                const std::uint64_t rem =
                    round_total % config_.numGroups;
                for (std::uint8_t g = 0; g < config_.numGroups; ++g) {
                    const std::uint64_t chunk =
                        base + (g < rem ? 1 : 0);
                    if (chunk == 0)
                        continue;
                    emitBootstrapChunk(
                        prog, g, static_cast<std::uint16_t>(chunk));
                }
                remaining -= round_total;
            }
        } else {
            while (remaining > 0) {
                const auto chunk = static_cast<std::uint16_t>(
                    std::min<std::uint64_t>(remaining,
                                            config_.groupSize));
                emitBootstrapChunk(prog, group, chunk);
                remaining -= chunk;
                group = static_cast<std::uint8_t>(
                    (group + 1) % config_.numGroups);
            }
        }

        // Stage boundary: every group must finish before the next
        // stage starts (its inputs are this stage's outputs).
        if (s + 1 < workload.stages.size()) {
            for (std::uint8_t g = 0; g < config_.numGroups; ++g)
                prog.add({Opcode::Barrier, g, 0, barrier_id});
            ++barrier_id;
        }
    }
    return prog;
}

Program
SwScheduler::scheduleBootstrapBatch(std::uint64_t count) const
{
    Workload w;
    w.name = "bootstrap-batch";
    w.stages.push_back({count, 0});
    return schedule(w);
}

} // namespace morphling::compiler
