/**
 * @file
 * Morphling's custom instruction set (Section V-E).
 *
 * Three instruction classes — XPU, VPU and DMA — drive the three
 * hardware resources. The SW scheduler emits one in-order stream per
 * scheduling group (the paper groups every 64 LWE ciphertexts into four
 * groups of 16); the HW scheduler dispatches each group's stream
 * in order while letting different groups overlap on free resources.
 */

#ifndef MORPHLING_COMPILER_ISA_H
#define MORPHLING_COMPILER_ISA_H

#include <cstdint>
#include <optional>
#include <string>

namespace morphling::compiler {

/** Operation encoded in an instruction. */
enum class Opcode : std::uint8_t
{
    // DMA class
    DmaLoadLwe,   //!< fetch `count` input LWE ciphertexts
    DmaLoadBsk,   //!< arm BSK streaming for a blind rotation (operand:
                  //!< bytes per iteration)
    DmaLoadKsk,   //!< fetch the (reuse-amortized) KSK slice (operand:
                  //!< bytes)
    DmaLoadData,  //!< fetch application operands for P-ALU (operand:
                  //!< bytes)
    DmaStoreLwe,  //!< write back `count` result LWE ciphertexts

    // VPU class
    VpuModSwitch,     //!< mod-switch `count` ciphertexts
    VpuSampleExtract, //!< sample-extract `count` ciphertexts
    VpuKeySwitch,     //!< key-switch `count` ciphertexts
    VpuPAlu,          //!< polynomial/vector ALU work (operand: MAC count)

    // XPU class
    XpuBlindRotate, //!< blind-rotate `count` ciphertexts (operand: n
                    //!< iterations)

    // Control class
    Barrier, //!< rendezvous: all groups must reach this barrier
             //!< (operand: barrier id) before any group proceeds
};

/** Number of defined opcodes; any encoding whose opcode byte is
 *  >= kOpcodeCount does not name an instruction. */
inline constexpr std::uint8_t kOpcodeCount =
    static_cast<std::uint8_t>(Opcode::Barrier) + 1;

/** True if the byte names a defined opcode. */
bool isValidOpcodeByte(std::uint8_t byte);

/** True if the opcode is executed by the DMA engines. */
bool isDmaOp(Opcode op);
/** True if the opcode is executed by the VPU. */
bool isVpuOp(Opcode op);
/** True if the opcode is executed by the XPU complex. */
bool isXpuOp(Opcode op);

/** Mnemonic for dumps and tests. */
std::string opcodeName(Opcode op);

/**
 * One instruction. Fixed 64-bit encoding:
 * [63:56] opcode, [55:48] group, [47:32] count, [31:0] operand.
 */
struct Instruction
{
    Opcode op = Opcode::DmaLoadLwe;
    std::uint8_t group = 0;    //!< scheduling group (0..3)
    std::uint16_t count = 0;   //!< ciphertexts covered
    std::uint32_t operand = 0; //!< op-specific payload

    /** Pack into the 64-bit machine encoding. */
    std::uint64_t encode() const;

    /** Unpack from the 64-bit machine encoding. Panics if the opcode
     *  byte is not a defined opcode — use tryDecode for untrusted
     *  words. */
    static Instruction decode(std::uint64_t word);

    /** Unpack from the 64-bit machine encoding; nullopt when the
     *  opcode byte does not name a defined opcode. Total over all
     *  2^64 words — never UB. */
    static std::optional<Instruction> tryDecode(std::uint64_t word);

    /** Human-readable rendering, e.g. "XPU.BR g0 x16 (n=500)". */
    std::string toString() const;

    bool operator==(const Instruction &other) const = default;
};

} // namespace morphling::compiler

#endif // MORPHLING_COMPILER_ISA_H
