#include "isa.h"

#include <sstream>

#include "common/logging.h"

namespace morphling::compiler {

bool
isValidOpcodeByte(std::uint8_t byte)
{
    return byte < kOpcodeCount;
}

bool
isDmaOp(Opcode op)
{
    switch (op) {
      case Opcode::DmaLoadLwe:
      case Opcode::DmaLoadBsk:
      case Opcode::DmaLoadKsk:
      case Opcode::DmaLoadData:
      case Opcode::DmaStoreLwe:
        return true;
      default:
        return false;
    }
}

bool
isVpuOp(Opcode op)
{
    switch (op) {
      case Opcode::VpuModSwitch:
      case Opcode::VpuSampleExtract:
      case Opcode::VpuKeySwitch:
      case Opcode::VpuPAlu:
        return true;
      default:
        return false;
    }
}

bool
isXpuOp(Opcode op)
{
    return op == Opcode::XpuBlindRotate;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::DmaLoadLwe:
        return "DMA.LD_LWE";
      case Opcode::DmaLoadBsk:
        return "DMA.LD_BSK";
      case Opcode::DmaLoadKsk:
        return "DMA.LD_KSK";
      case Opcode::DmaLoadData:
        return "DMA.LD_DATA";
      case Opcode::DmaStoreLwe:
        return "DMA.ST_LWE";
      case Opcode::VpuModSwitch:
        return "VPU.MS";
      case Opcode::VpuSampleExtract:
        return "VPU.SE";
      case Opcode::VpuKeySwitch:
        return "VPU.KS";
      case Opcode::VpuPAlu:
        return "VPU.PALU";
      case Opcode::XpuBlindRotate:
        return "XPU.BR";
      case Opcode::Barrier:
        return "CTRL.BAR";
    }
    panic("unknown opcode ", static_cast<int>(op));
}

std::uint64_t
Instruction::encode() const
{
    return (static_cast<std::uint64_t>(op) << 56) |
           (static_cast<std::uint64_t>(group) << 48) |
           (static_cast<std::uint64_t>(count) << 32) |
           static_cast<std::uint64_t>(operand);
}

Instruction
Instruction::decode(std::uint64_t word)
{
    auto inst = tryDecode(word);
    panic_if(!inst, "invalid opcode byte ",
             static_cast<unsigned>((word >> 56) & 0xFF),
             " in instruction word ", word);
    return *inst;
}

std::optional<Instruction>
Instruction::tryDecode(std::uint64_t word)
{
    const auto op_byte = static_cast<std::uint8_t>((word >> 56) & 0xFF);
    if (!isValidOpcodeByte(op_byte))
        return std::nullopt;
    Instruction inst;
    inst.op = static_cast<Opcode>(op_byte);
    inst.group = static_cast<std::uint8_t>((word >> 48) & 0xFF);
    inst.count = static_cast<std::uint16_t>((word >> 32) & 0xFFFF);
    inst.operand = static_cast<std::uint32_t>(word & 0xFFFFFFFF);
    return inst;
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << opcodeName(op) << " g" << static_cast<int>(group) << " x"
        << count;
    if (operand)
        oss << " (op=" << operand << ")";
    return oss.str();
}

} // namespace morphling::compiler
