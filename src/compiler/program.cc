#include "program.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/logging.h"

namespace morphling::compiler {

std::uint64_t
Workload::totalBootstraps() const
{
    std::uint64_t total = 0;
    for (const auto &s : stages)
        total += s.bootstraps;
    return total;
}

std::uint64_t
Workload::totalLinearMacs() const
{
    std::uint64_t total = 0;
    for (const auto &s : stages)
        total += s.linearMacs;
    return total;
}

std::vector<Instruction>
Program::groupStream(std::uint8_t group) const
{
    std::vector<Instruction> out;
    for (const auto &inst : instrs_) {
        if (inst.group == group)
            out.push_back(inst);
    }
    return out;
}

unsigned
Program::numGroups() const
{
    unsigned groups = 0;
    for (const auto &inst : instrs_)
        groups = std::max<unsigned>(groups, inst.group + 1u);
    return groups;
}

ProgramSlice
Program::sliceGroups(const std::string &name,
                     const std::vector<std::uint8_t> &groups) const
{
    panic_if(groups.empty(), "sliceGroups with no groups");
    // Dense remap table: source group id -> slice-local id.
    std::array<int, 256> local;
    local.fill(-1);
    for (std::size_t i = 0; i < groups.size(); ++i) {
        panic_if(i > 0 && groups[i] <= groups[i - 1],
                 "sliceGroups groups must be ascending and unique");
        local[groups[i]] = static_cast<int>(i);
    }

    ProgramSlice slice;
    slice.program = Program(name);
    slice.groups = groups;
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
        const int remapped = local[instrs_[i].group];
        if (remapped < 0)
            continue;
        Instruction inst = instrs_[i];
        inst.group = static_cast<std::uint8_t>(remapped);
        slice.program.add(inst);
        slice.globalIndex.push_back(i);
    }
    return slice;
}

std::map<Opcode, std::uint64_t>
Program::histogram() const
{
    std::map<Opcode, std::uint64_t> out;
    for (const auto &inst : instrs_)
        ++out[inst.op];
    return out;
}

std::uint64_t
Program::totalBlindRotations() const
{
    std::uint64_t total = 0;
    for (const auto &inst : instrs_) {
        if (inst.op == Opcode::XpuBlindRotate)
            total += inst.count;
    }
    return total;
}

std::vector<std::uint64_t>
Program::serialize() const
{
    std::vector<std::uint64_t> words;
    words.reserve(instrs_.size());
    for (const auto &inst : instrs_)
        words.push_back(inst.encode());
    return words;
}

Program
Program::deserialize(const std::string &name,
                     const std::vector<std::uint64_t> &words)
{
    Program prog(name);
    for (std::size_t i = 0; i < words.size(); ++i) {
        auto inst = Instruction::tryDecode(words[i]);
        fatal_if(!inst, "program '", name, "': word ", i,
                 " has invalid opcode byte ",
                 static_cast<unsigned>((words[i] >> 56) & 0xFF));
        prog.add(*inst);
    }
    return prog;
}

std::vector<std::uint64_t>
Program::serializeFramed() const
{
    std::vector<std::uint64_t> words;
    words.reserve(3 + instrs_.size());
    words.push_back(kFramedMagic);
    words.push_back(static_cast<std::uint64_t>(instrs_.size()));
    words.push_back(static_cast<std::uint64_t>(numGroups()));
    for (const auto &inst : instrs_)
        words.push_back(inst.encode());
    return words;
}

std::optional<Program>
Program::tryDeserializeFramed(const std::string &name,
                              const std::vector<std::uint64_t> &words,
                              std::string *error)
{
    const auto fail = [&](std::string message) -> std::optional<Program> {
        if (error != nullptr)
            *error = "program '" + name + "': " + std::move(message);
        return std::nullopt;
    };

    if (words.size() < 3)
        return fail("framed buffer of " + std::to_string(words.size()) +
                    " words is shorter than the 3-word header");
    if (words[0] != kFramedMagic)
        return fail("bad magic/version word");
    const std::uint64_t count = words[1];
    if (words.size() - 3 < count)
        return fail("truncated: header declares " +
                    std::to_string(count) + " instructions, buffer "
                    "holds " + std::to_string(words.size() - 3));
    if (words.size() - 3 > count)
        return fail("oversized: " +
                    std::to_string(words.size() - 3 - count) +
                    " trailing words after the declared " +
                    std::to_string(count) + " instructions");

    Program prog(name);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto inst = Instruction::tryDecode(words[3 + i]);
        if (!inst) {
            return fail(
                "word " + std::to_string(i) +
                " has invalid opcode byte " +
                std::to_string((words[3 + i] >> 56) & 0xFF));
        }
        prog.add(*inst);
    }
    if (prog.numGroups() != words[2]) {
        return fail("group count mismatch: header declares " +
                    std::to_string(words[2]) + " groups, stream has " +
                    std::to_string(prog.numGroups()));
    }
    return prog;
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < instrs_.size(); ++i)
        oss << i << ": " << instrs_[i].toString() << '\n';
    return oss.str();
}

std::string
Program::disassembleByGroup() const
{
    std::ostringstream oss;
    for (unsigned g = 0; g < numGroups(); ++g) {
        oss << "group " << g << '\n';
        for (const auto &inst : instrs_) {
            if (inst.group == g)
                oss << "  " << inst.toString() << '\n';
        }
    }
    return oss.str();
}

} // namespace morphling::compiler
