#include "program.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace morphling::compiler {

std::uint64_t
Workload::totalBootstraps() const
{
    std::uint64_t total = 0;
    for (const auto &s : stages)
        total += s.bootstraps;
    return total;
}

std::uint64_t
Workload::totalLinearMacs() const
{
    std::uint64_t total = 0;
    for (const auto &s : stages)
        total += s.linearMacs;
    return total;
}

std::vector<Instruction>
Program::groupStream(std::uint8_t group) const
{
    std::vector<Instruction> out;
    for (const auto &inst : instrs_) {
        if (inst.group == group)
            out.push_back(inst);
    }
    return out;
}

unsigned
Program::numGroups() const
{
    unsigned groups = 0;
    for (const auto &inst : instrs_)
        groups = std::max<unsigned>(groups, inst.group + 1u);
    return groups;
}

std::map<Opcode, std::uint64_t>
Program::histogram() const
{
    std::map<Opcode, std::uint64_t> out;
    for (const auto &inst : instrs_)
        ++out[inst.op];
    return out;
}

std::uint64_t
Program::totalBlindRotations() const
{
    std::uint64_t total = 0;
    for (const auto &inst : instrs_) {
        if (inst.op == Opcode::XpuBlindRotate)
            total += inst.count;
    }
    return total;
}

std::vector<std::uint64_t>
Program::serialize() const
{
    std::vector<std::uint64_t> words;
    words.reserve(instrs_.size());
    for (const auto &inst : instrs_)
        words.push_back(inst.encode());
    return words;
}

Program
Program::deserialize(const std::string &name,
                     const std::vector<std::uint64_t> &words)
{
    Program prog(name);
    for (std::size_t i = 0; i < words.size(); ++i) {
        auto inst = Instruction::tryDecode(words[i]);
        fatal_if(!inst, "program '", name, "': word ", i,
                 " has invalid opcode byte ",
                 static_cast<unsigned>((words[i] >> 56) & 0xFF));
        prog.add(*inst);
    }
    return prog;
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < instrs_.size(); ++i)
        oss << i << ": " << instrs_[i].toString() << '\n';
    return oss.str();
}

std::string
Program::disassembleByGroup() const
{
    std::ostringstream oss;
    for (unsigned g = 0; g < numGroups(); ++g) {
        oss << "group " << g << '\n';
        for (const auto &inst : instrs_) {
            if (inst.group == g)
                oss << "  " << inst.toString() << '\n';
        }
    }
    return oss.str();
}

} // namespace morphling::compiler
