#include "program.h"

#include <sstream>

namespace morphling::compiler {

std::uint64_t
Workload::totalBootstraps() const
{
    std::uint64_t total = 0;
    for (const auto &s : stages)
        total += s.bootstraps;
    return total;
}

std::uint64_t
Workload::totalLinearMacs() const
{
    std::uint64_t total = 0;
    for (const auto &s : stages)
        total += s.linearMacs;
    return total;
}

std::vector<Instruction>
Program::groupStream(std::uint8_t group) const
{
    std::vector<Instruction> out;
    for (const auto &inst : instrs_) {
        if (inst.group == group)
            out.push_back(inst);
    }
    return out;
}

std::map<Opcode, std::uint64_t>
Program::histogram() const
{
    std::map<Opcode, std::uint64_t> out;
    for (const auto &inst : instrs_)
        ++out[inst.op];
    return out;
}

std::uint64_t
Program::totalBlindRotations() const
{
    std::uint64_t total = 0;
    for (const auto &inst : instrs_) {
        if (inst.op == Opcode::XpuBlindRotate)
            total += inst.count;
    }
    return total;
}

std::vector<std::uint64_t>
Program::serialize() const
{
    std::vector<std::uint64_t> words;
    words.reserve(instrs_.size());
    for (const auto &inst : instrs_)
        words.push_back(inst.encode());
    return words;
}

Program
Program::deserialize(const std::string &name,
                     const std::vector<std::uint64_t> &words)
{
    Program prog(name);
    for (auto w : words)
        prog.add(Instruction::decode(w));
    return prog;
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < instrs_.size(); ++i)
        oss << i << ": " << instrs_[i].toString() << '\n';
    return oss.str();
}

} // namespace morphling::compiler
