/**
 * @file
 * A compiled instruction stream plus the workload description it came
 * from.
 *
 * A Program is a flat list of instructions; instructions of the same
 * group execute in list order, different groups are independent (the
 * HW scheduler interleaves them). Serialization round-trips through the
 * 64-bit encoding so streams could be shipped to a device.
 */

#ifndef MORPHLING_COMPILER_PROGRAM_H
#define MORPHLING_COMPILER_PROGRAM_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compiler/isa.h"

namespace morphling::compiler {

/**
 * One phase of an application: `bootstraps` independent programmable
 * bootstraps, preceded by `linearMacs` ciphertext-scalar MACs (e.g. a
 * convolution layer feeding an activation layer). Stages are
 * sequentially dependent.
 */
struct WorkloadStage
{
    std::uint64_t bootstraps = 0;
    std::uint64_t linearMacs = 0;
};

/** An application workload: named list of dependent stages. */
struct Workload
{
    std::string name;
    std::vector<WorkloadStage> stages;

    std::uint64_t totalBootstraps() const;
    std::uint64_t totalLinearMacs() const;
};

struct ProgramSlice;

/** The compiled instruction stream. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void add(const Instruction &inst) { instrs_.push_back(inst); }

    std::size_t size() const { return instrs_.size(); }
    const Instruction &at(std::size_t i) const { return instrs_[i]; }
    const std::vector<Instruction> &instructions() const
    {
        return instrs_;
    }

    /** Instructions belonging to one scheduling group, in order. */
    std::vector<Instruction> groupStream(std::uint8_t group) const;

    /** Number of scheduling groups present (highest group id + 1;
     *  0 for an empty program). */
    unsigned numGroups() const;

    /**
     * Carve out the streams of a subset of scheduling groups as a
     * standalone sub-program (see ProgramSlice). `groups` must be
     * non-empty, sorted ascending and duplicate-free; ids beyond
     * numGroups() are permitted (they contribute empty streams), so a
     * fixed round-robin shard assignment works for any program.
     * Groups are data-independent between barriers, so a slice
     * executes correctly on its own backend; the slice keeps each
     * group's barrier instructions, making the rendezvous local to
     * the slice's groups.
     */
    ProgramSlice sliceGroups(const std::string &name,
                             const std::vector<std::uint8_t> &groups)
        const;

    /** Count of instructions per opcode (used by tests and dumps). */
    std::map<Opcode, std::uint64_t> histogram() const;

    /** Total ciphertexts blind-rotated by this program. */
    std::uint64_t totalBlindRotations() const;

    /** Pack to 64-bit words. */
    std::vector<std::uint64_t> serialize() const;

    /** Unpack from 64-bit words. Exits with a diagnostic on a word
     *  whose opcode byte is invalid (untrusted input, not a bug). */
    static Program deserialize(const std::string &name,
                               const std::vector<std::uint64_t> &words);

    /** First word of the framed container: 'MORPHP' + format version,
     *  bumped on any layout change. */
    static constexpr std::uint64_t kFramedMagic = 0x4D4F52504850'0001ull;

    /**
     * Pack to a self-describing container for the on-disk program
     * cache: [kFramedMagic, instruction count, numGroups(),
     * instruction words...]. The redundant header fields are what
     * tryDeserializeFramed validates against.
     */
    std::vector<std::uint64_t> serializeFramed() const;

    /**
     * Decode a framed container without trusting it: returns nullopt
     * (with a diagnostic in *error when given) on a short or oversized
     * buffer, a bad magic/version word, an invalid opcode byte, or a
     * group count disagreeing with the header — the hardened surface a
     * cache of on-disk programs decodes through.
     */
    static std::optional<Program>
    tryDeserializeFramed(const std::string &name,
                         const std::vector<std::uint64_t> &words,
                         std::string *error = nullptr);

    /** Multi-line disassembly. */
    std::string disassemble() const;

    /** Disassembly grouped by scheduling group: one `group N` header
     *  per group followed by that group's stream in program order.
     *  Stable format — the golden disassembly test diffs it. */
    std::string disassembleByGroup() const;

  private:
    std::string name_;
    std::vector<Instruction> instrs_;
};

/**
 * One shard's view of a Program (Program::sliceGroups): the
 * instruction streams of a subset of its scheduling groups, in
 * original program order, with group ids remapped densely to
 * 0..groups.size()-1 (backends size their group tables from the
 * highest id, and a barrier rendezvous must not wait on groups the
 * shard does not own). `groups[i]` names the source group that became
 * slice-local group i; `globalIndex[j]` maps slice instruction j back
 * to its index in the source Program — how a sharded runner merges
 * per-shard retirement logs into global program order
 * (exec/sharded_backend.h).
 */
struct ProgramSlice
{
    Program program;
    std::vector<std::uint8_t> groups;     //!< ascending source ids
    std::vector<std::size_t> globalIndex; //!< slice index -> source index
};

} // namespace morphling::compiler

#endif // MORPHLING_COMPILER_PROGRAM_H
