/**
 * @file
 * The SW scheduler (Figure 6): application-level batching, tiling and
 * instruction-stream generation.
 *
 * Bootstrapping tasks are grouped into superbatches of
 * numGroups * groupSize LWE ciphertexts (4 groups of 16 by default =
 * the paper's 64). Each group receives one in-order dependent stream
 * VPU(MS) -> XPU(BR) -> VPU(SE) -> VPU(KS) per chunk, with the DMA
 * instructions that stage the data. Groups run concurrently; barriers
 * separate dependent application stages (e.g. NN layers). KSK traffic
 * is amortized over the kskReuse ciphertexts that share one fetch
 * (Section IV-C).
 */

#ifndef MORPHLING_COMPILER_SW_SCHEDULER_H
#define MORPHLING_COMPILER_SW_SCHEDULER_H

#include "compiler/program.h"
#include "tfhe/params.h"

namespace morphling::compiler {

/** @{
 * The paper's canonical batching geometry (Figure 6): superbatches of
 * kNumGroups concurrent groups of kGroupSize LWEs each. Shared by the
 * SW scheduler and the request-batching service layer
 * (service/bootstrap_service.h), so the software queue assembles
 * exactly the unit the hardware schedule is built around.
 */
inline constexpr unsigned kGroupSize = 16;  //!< 4 rows x 4 XPUs
inline constexpr unsigned kNumGroups = 4;   //!< concurrent groups
inline constexpr unsigned kSuperbatchSize = kGroupSize * kNumGroups;
/** @} */

/**
 * How bootstrap chunks are laid over the groups.
 *
 * - kRoundRobin:        chunks of groupSize walk the groups in order;
 *                       uneven totals leave trailing groups with fewer
 *                       chunks (the historical default).
 * - kGroupInterleaved:  emission proceeds in rounds that split the
 *                       round's ciphertexts evenly (±1) across ALL
 *                       groups, so every group carries the same
 *                       chunk-sequence length. Shards sliced from such
 *                       a program stay phase-aligned on the same
 *                       blind-rotation iteration, which is what lets
 *                       fleet-mode BSK broadcasts coalesce.
 */
enum class InterleaveMode
{
    kRoundRobin,
    kGroupInterleaved,
};

/** Batching/tiling knobs of the SW scheduler. */
struct SchedulerConfig
{
    unsigned groupSize = kGroupSize; //!< LWEs per group
    unsigned numGroups = kNumGroups; //!< groups per superbatch
    unsigned kskReuse = kSuperbatchSize; //!< cts amortizing one KSK fetch
    InterleaveMode interleave = InterleaveMode::kRoundRobin;
};

/** Compiles workloads into Morphling instruction streams. */
class SwScheduler
{
  public:
    explicit SwScheduler(const tfhe::TfheParams &params,
                         SchedulerConfig config = {});

    const SchedulerConfig &config() const { return config_; }
    const tfhe::TfheParams &params() const { return params_; }

    /** Compile a multi-stage workload. */
    Program schedule(const Workload &workload) const;

    /** Convenience: a single stage of `count` independent bootstraps
     *  (the Table V measurement program). */
    Program scheduleBootstrapBatch(std::uint64_t count) const;

    /** Bytes of BSK streamed per blind-rotation iteration
     *  (the operand of DMA.LD_BSK). */
    std::uint64_t bskBytesPerIteration() const;

    /** Amortized KSK bytes fetched for `count` ciphertexts. */
    std::uint64_t kskBytesFor(std::uint64_t count) const;

  private:
    void emitBootstrapChunk(Program &prog, std::uint8_t group,
                            std::uint16_t count) const;

    const tfhe::TfheParams &params_;
    SchedulerConfig config_;
};

} // namespace morphling::compiler

#endif // MORPHLING_COMPILER_SW_SCHEDULER_H
