#include "workloads.h"

#include "common/logging.h"

namespace morphling::apps {

unsigned
LayerSpec::outHeight() const
{
    panic_if(inHeight < kernel, "kernel larger than input");
    return (inHeight - kernel) / stride + 1;
}

unsigned
LayerSpec::outWidth() const
{
    panic_if(inWidth < kernel, "kernel larger than input");
    return (inWidth - kernel) / stride + 1;
}

std::uint64_t
LayerSpec::outputs() const
{
    return std::uint64_t{outHeight()} * outWidth() * filters;
}

std::uint64_t
LayerSpec::macs() const
{
    return outputs() * kernel * kernel * inChannels;
}

compiler::Workload
cnnWorkload(const std::string &name, const std::vector<LayerSpec> &layers)
{
    compiler::Workload w;
    w.name = name;
    for (const auto &layer : layers) {
        compiler::WorkloadStage stage;
        stage.linearMacs = layer.macs();
        stage.bootstraps = layer.reluAfter ? layer.outputs() : 0;
        w.stages.push_back(stage);
    }
    return w;
}

compiler::Workload
xgboostWorkload(unsigned estimators, unsigned depth)
{
    compiler::Workload w;
    w.name = "xgboost-" + std::to_string(estimators) + "x" +
             std::to_string(depth);
    // Oblivious evaluation: every internal node compares the encrypted
    // feature against its threshold -> one sign bootstrap per node.
    const std::uint64_t internal_nodes =
        std::uint64_t{estimators} * ((1ull << depth) - 1);
    w.stages.push_back({internal_nodes, 0});
    // Leaf aggregation: path-indicator products summed into per-class
    // scores (one MAC per leaf per tree).
    const std::uint64_t leaves = std::uint64_t{estimators}
                                 << depth;
    w.stages.push_back({0, leaves});
    return w;
}

compiler::Workload
deepCnnWorkload(unsigned x_layers)
{
    std::vector<LayerSpec> layers;
    // 8x8x1 input, 3x3 conv with 2 filters.
    layers.push_back({8, 8, 1, 3, 2, 1, true});
    // 3x3 conv with 92 filters, stride 2 -> 2x2x92 (368 ReLUs).
    const auto &l1 = layers.back();
    layers.push_back(
        {l1.outHeight(), l1.outWidth(), 2, 3, 92, 2, true});
    // X 1x1 conv layers with 92 filters.
    for (unsigned i = 0; i < x_layers; ++i) {
        const auto &prev = layers.back();
        layers.push_back(
            {prev.outHeight(), prev.outWidth(), 92, 1, 92, 1, true});
    }
    // 2x2 conv with 16 filters.
    const auto &last_conv = layers.back();
    layers.push_back({last_conv.outHeight(), last_conv.outWidth(), 92,
                      2, 16, 1, true});
    // FC with 10 neurons (no activation on logits).
    const auto &pre_fc = layers.back();
    layers.push_back({1, 1,
                      static_cast<unsigned>(pre_fc.outputs()), 1, 10, 1,
                      false});
    return cnnWorkload("deepcnn-" + std::to_string(x_layers), layers);
}

compiler::Workload
vgg9Workload()
{
    compiler::Workload w;
    w.name = "vgg-9";
    auto add_conv = [&w](const LayerSpec &layer) {
        w.stages.push_back({layer.reluAfter ? layer.outputs() : 0,
                            layer.macs()});
        return layer;
    };
    auto add_pool = [&w](const PoolSpec &pool) {
        w.stages.push_back({0, pool.macs()});
    };

    // Same-padded 3x3 convolutions: model with kernel-sized padding by
    // keeping the spatial size (the paper reports full 32x32 maps).
    auto same_conv = [](unsigned hw, unsigned in_c, unsigned filters) {
        LayerSpec l;
        l.inHeight = l.inWidth = hw + 2; // zero padding
        l.inChannels = in_c;
        l.kernel = 3;
        l.filters = filters;
        l.stride = 1;
        l.reluAfter = true;
        return l;
    };

    add_conv(same_conv(32, 3, 64));    // conv1: 32x32x64
    add_conv(same_conv(32, 64, 64));   // conv2
    add_pool({16, 16, 64, 2});         // avg pool 2x2
    add_conv(same_conv(16, 64, 128));  // conv3
    add_conv(same_conv(16, 128, 128)); // conv4
    add_pool({8, 8, 128, 2});          // avg pool 2x2
    add_conv(same_conv(8, 128, 256));  // conv5
    add_conv(same_conv(8, 256, 256));  // conv6

    // FC 512 / 512 / 10.
    w.stages.push_back({512, std::uint64_t{8} * 8 * 256 * 512});
    w.stages.push_back({512, std::uint64_t{512} * 512});
    w.stages.push_back({0, std::uint64_t{512} * 10});
    return w;
}

} // namespace morphling::apps
