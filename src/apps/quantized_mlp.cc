#include "quantized_mlp.h"

#include "apps/workload_exec.h"
#include "common/bits.h"
#include "common/logging.h"
#include "tfhe/encoding.h"

namespace morphling::apps {

using tfhe::KeySet;
using tfhe::LweCiphertext;

void
QuantizedMlp::addLayer(DenseLayer layer)
{
    fatal_if(layer.outputs() == 0 || layer.inputs() == 0,
             "empty layer");
    for (const auto &row : layer.weights)
        fatal_if(row.size() != layer.inputs(),
                 "ragged weight matrix");
    fatal_if(!layer.reluAfter && layer.shift != 0,
             "rescale without an activation bootstrap is not "
             "homomorphically computable");
    if (!layers_.empty()) {
        fatal_if(layer.inputs() != layers_.back().outputs(),
                 "layer width mismatch: ", layer.inputs(), " vs ",
                 layers_.back().outputs());
    }
    layers_.push_back(std::move(layer));
}

std::uint64_t
QuantizedMlp::bootstrapCount() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer.reluAfter ? layer.outputs() : 0;
    return total;
}

QuantizedMlp
QuantizedMlp::random(std::uint32_t space,
                     const std::vector<unsigned> &widths,
                     int weight_range, unsigned shift, Rng &rng)
{
    fatal_if(widths.size() < 2, "need input and output widths");
    QuantizedMlp mlp(space);
    for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
        DenseLayer layer;
        layer.weights.assign(widths[l + 1],
                             std::vector<int>(widths[l], 0));
        for (auto &row : layer.weights) {
            for (auto &w : row) {
                w = static_cast<int>(rng.nextBelow(
                        2 * weight_range + 1)) -
                    weight_range;
            }
        }
        const bool last = l + 2 == widths.size();
        layer.reluAfter = !last;
        layer.shift = last ? 0 : shift;
        mlp.addLayer(std::move(layer));
    }
    return mlp;
}

std::uint32_t
QuantizedMlp::encodeSigned(int value) const
{
    // Signed values live on the full 2p torus grid: v -> v/(2p), so
    // negatives sit just below the seam and the padding bit survives
    // as long as |v| < p/2.
    const int two_p = 2 * static_cast<int>(space_);
    return static_cast<std::uint32_t>(((value % two_p) + two_p) %
                                      two_p);
}

int
QuantizedMlp::decodeSigned(std::uint32_t message) const
{
    // message in [0, 2p) -> centered [-p, p).
    return message < space_
               ? static_cast<int>(message)
               : static_cast<int>(message) -
                     2 * static_cast<int>(space_);
}

LweCiphertext
QuantizedMlp::encryptSigned(const KeySet &keys, int value, Rng &rng)
    const
{
    return LweCiphertext::encrypt(
        keys.lweKey, tfhe::encodeMessage(encodeSigned(value), 2 * space_),
        keys.params.lweNoiseStd, rng);
}

int
QuantizedMlp::decryptSigned(const KeySet &keys,
                            const LweCiphertext &ct) const
{
    return decodeSigned(tfhe::lweDecrypt(keys.lweKey, ct, 2 * space_));
}

int
QuantizedMlp::activate(long long acc, const DenseLayer &layer) const
{
    // Emulate the torus exactly: the sum wraps mod 2p into [-p, p);
    // the LUT covers the signed window [-p/2, p/2) directly and the
    // outer halves through the negacyclic wrap (value -f(w -+ p)).
    const int p = static_cast<int>(space_);
    const int two_p = 2 * p;
    int w = static_cast<int>(((acc % two_p) + two_p) % two_p);
    if (w >= p)
        w -= two_p; // [-p, p)

    auto f = [&](int v) {
        if (!layer.reluAfter)
            return v;
        return v >= 0 ? (v >> layer.shift) : 0;
    };
    if (!layer.reluAfter)
        return w;
    if (w >= p / 2)
        return -f(w - p);
    if (w < -p / 2)
        return -f(w + p);
    return f(w);
}

std::vector<int>
QuantizedMlp::inferPlain(const std::vector<int> &inputs) const
{
    panic_if(layers_.empty(), "empty model");
    panic_if(inputs.size() != layers_.front().inputs(),
             "input width mismatch");
    std::vector<int> acts(inputs);
    for (const auto &layer : layers_) {
        std::vector<int> next(layer.outputs());
        for (unsigned j = 0; j < layer.outputs(); ++j) {
            long long acc = 0;
            for (unsigned i = 0; i < layer.inputs(); ++i)
                acc += static_cast<long long>(layer.weights[j][i]) *
                       acts[i];
            next[j] = activate(acc, layer);
        }
        acts = std::move(next);
    }
    return acts;
}

std::vector<LweCiphertext>
QuantizedMlp::inferEncrypted(const KeySet &keys,
                             const std::vector<LweCiphertext> &inputs)
    const
{
    panic_if(layers_.empty(), "empty model");
    panic_if(inputs.size() != layers_.front().inputs(),
             "input width mismatch");

    std::vector<LweCiphertext> acts(inputs);
    for (const auto &layer : layers_) {
        // The activation LUT over p slots: the lower half holds
        // f(v) for v in [0, p/2); the upper half holds the negacyclic
        // extension -f(v - p) for v in [p/2, p), which is what the
        // blind rotation reads for negative inputs. All outputs are
        // re-encoded on the signed 2p grid.
        auto f = [&layer](int v) {
            return v >= 0 ? (v >> layer.shift) : 0;
        };
        std::vector<tfhe::Torus32> lut(space_);
        const int p = static_cast<int>(space_);
        for (int s = 0; s < p; ++s) {
            const int value = s < p / 2
                                  ? f(s)
                                  : -f(s - p);
            lut[static_cast<std::size_t>(s)] = tfhe::encodeMessage(
                encodeSigned(value), 2 * space_);
        }

        // Linear MACs accumulate homomorphically (free), then the
        // whole layer's activations bootstrap as ONE batch: compiled
        // to a Morphling Program and interpreted on the functional
        // execution backend — the same batched-superbatch shape the
        // accelerator schedule is built around.
        std::vector<LweCiphertext> accs;
        accs.reserve(layer.outputs());
        for (unsigned j = 0; j < layer.outputs(); ++j) {
            LweCiphertext acc(keys.params.lweDimension);
            for (unsigned i = 0; i < layer.inputs(); ++i) {
                if (layer.weights[j][i] == 0)
                    continue;
                LweCiphertext term = acts[i];
                term.scaleAssign(layer.weights[j][i]);
                acc.addAssign(term);
            }
            accs.push_back(std::move(acc));
        }
        if (layer.reluAfter)
            acts = runBootstrapBatch(keys, accs, lut);
        else
            acts = std::move(accs);
    }
    return acts;
}

compiler::Workload
QuantizedMlp::workload(const std::string &name, std::uint64_t batch)
    const
{
    compiler::Workload w;
    w.name = name;
    for (const auto &layer : layers_) {
        compiler::WorkloadStage stage;
        stage.linearMacs = layer.macs() * batch;
        stage.bootstraps =
            (layer.reluAfter ? layer.outputs() : 0) * batch;
        w.stages.push_back(stage);
    }
    return w;
}

} // namespace morphling::apps
