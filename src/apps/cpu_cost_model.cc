#include "cpu_cost_model.h"

#include <chrono>

#include "common/logging.h"
#include "common/rng.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"
#include "tfhe/opcount.h"

namespace morphling::apps {

double
CpuCostModel::pbsSeconds(std::uint64_t count) const
{
    const double parallel = cores * parallelEff;
    return static_cast<double>(count) * perPbsMs / 1000.0 / parallel;
}

double
CpuCostModel::linearSeconds(std::uint64_t macs, unsigned lwe_dim) const
{
    const double ops =
        static_cast<double>(macs) * (lwe_dim + 1); // word MACs
    const double rate = macGops * 1e9 * cores * parallelEff;
    return ops / rate;
}

double
CpuCostModel::workloadSeconds(const compiler::Workload &workload,
                              unsigned lwe_dim) const
{
    double seconds = 0;
    for (const auto &stage : workload.stages) {
        seconds += pbsSeconds(stage.bootstraps);
        seconds += linearSeconds(stage.linearMacs, lwe_dim);
    }
    return seconds;
}

CpuCostModel
paperConcreteCpu(const tfhe::TfheParams &params)
{
    CpuCostModel cpu;
    cpu.source = "paper(Concrete)";

    // Table V, Concrete rows.
    if (params.name == "I") {
        cpu.perPbsMs = 15.65;
        return cpu;
    }
    if (params.name == "II") {
        cpu.perPbsMs = 27.26;
        return cpu;
    }
    if (params.name == "III") {
        cpu.perPbsMs = 82.19;
        return cpu;
    }

    // Extrapolate by total multiplication count relative to set III.
    const auto ref_ops = tfhe::bootstrapOps(
        tfhe::paramsSetIII(), tfhe::CostModel::CpuReference);
    const auto ops =
        tfhe::bootstrapOps(params, tfhe::CostModel::CpuReference);
    cpu.perPbsMs = 82.19 * static_cast<double>(ops.total()) /
                   static_cast<double>(ref_ops.total());
    cpu.source += "+extrapolated";
    return cpu;
}

CpuCostModel
measuredCpu(const tfhe::TfheParams &params, unsigned samples)
{
    fatal_if(samples == 0, "need at least one sample");
    Rng rng(0xC0FFEE);
    const tfhe::KeySet keys = tfhe::KeySet::generate(params, rng);
    const auto lut = tfhe::makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    auto ct = tfhe::encryptPadded(keys, 1, 4, rng);

    // One warm-up bootstrap (FFT table setup etc.).
    auto out = tfhe::programmableBootstrap(keys, ct, lut);

    const auto start = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < samples; ++i)
        out = tfhe::programmableBootstrap(keys, out, lut);
    const auto stop = std::chrono::steady_clock::now();

    CpuCostModel cpu;
    cpu.source = "measured";
    cpu.perPbsMs = std::chrono::duration<double, std::milli>(
                       stop - start)
                       .count() /
                   samples;
    return cpu;
}

} // namespace morphling::apps
