/**
 * @file
 * Quantized multi-layer perceptrons over TFHE — the programmable-
 * bootstrapping inference pattern behind the paper's DeepCNN and VGG-9
 * benchmarks: linear layers accumulate homomorphically (free), every
 * activation is one programmable bootstrap implementing
 * rescale + ReLU + noise refresh in a single LUT.
 *
 * Messages use the padded signed convention of tfhe/encoding.h: values
 * in [-p/2, p/2) over a p-value space; the LUT clamps negatives (ReLU)
 * and right-shifts to keep activations in range.
 */

#ifndef MORPHLING_APPS_QUANTIZED_MLP_H
#define MORPHLING_APPS_QUANTIZED_MLP_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "compiler/program.h"
#include "tfhe/bootstrap.h"

namespace morphling::apps {

/** One dense layer: out[j] = act(sum_i w[j][i] * in[i] >> shift). */
struct DenseLayer
{
    std::vector<std::vector<int>> weights; //!< [out][in], small ints
    unsigned shift = 0;                    //!< rescale after the sum
    bool reluAfter = true;                 //!< bootstrap activation

    unsigned
    outputs() const
    {
        return static_cast<unsigned>(weights.size());
    }
    unsigned
    inputs() const
    {
        return weights.empty()
                   ? 0
                   : static_cast<unsigned>(weights[0].size());
    }
    std::uint64_t
    macs() const
    {
        return std::uint64_t{outputs()} * inputs();
    }
};

/** A quantized MLP over a p-value signed message space. */
class QuantizedMlp
{
  public:
    /**
     * @param space message space p (power of two; signed values in
     *              [-p/2, p/2))
     */
    explicit QuantizedMlp(std::uint32_t space) : space_(space) {}

    void addLayer(DenseLayer layer);

    const std::vector<DenseLayer> &layers() const { return layers_; }
    std::uint32_t space() const { return space_; }

    /** Activation bootstraps one inference costs. */
    std::uint64_t bootstrapCount() const;

    /** Random model with weights in [-w, w] (deterministic). */
    static QuantizedMlp random(std::uint32_t space,
                               const std::vector<unsigned> &widths,
                               int weight_range, unsigned shift,
                               Rng &rng);

    /** Plaintext inference (signed), the reference. */
    std::vector<int> inferPlain(const std::vector<int> &inputs) const;

    /** Homomorphic inference over encrypted signed inputs. Each
     *  layer's activations bootstrap as one batch via a compiled
     *  Program on the functional execution backend
     *  (apps::runBootstrapBatch). */
    std::vector<tfhe::LweCiphertext>
    inferEncrypted(const tfhe::KeySet &keys,
                   const std::vector<tfhe::LweCiphertext> &inputs)
        const;

    /** @{ Signed padded encode/decode helpers for this space. */
    std::uint32_t encodeSigned(int value) const;
    int decodeSigned(std::uint32_t message) const;
    tfhe::LweCiphertext encryptSigned(const tfhe::KeySet &keys,
                                      int value, Rng &rng) const;
    int decryptSigned(const tfhe::KeySet &keys,
                      const tfhe::LweCiphertext &ct) const;
    /** @} */

    /** Compile `batch` inferences to a scheduler workload: one stage
     *  per layer (bootstraps = activations, MACs = weights). */
    compiler::Workload workload(const std::string &name,
                                std::uint64_t batch = 1) const;

  private:
    /** Plaintext activation: rescale then ReLU-clamp into range. */
    int activate(long long acc, const DenseLayer &layer) const;

    std::uint32_t space_;
    std::vector<DenseLayer> layers_;
};

} // namespace morphling::apps

#endif // MORPHLING_APPS_QUANTIZED_MLP_H
