/**
 * @file
 * Boolean circuits over encrypted bits.
 *
 * The XGBoost comparators and any non-LUT-shaped logic decompose into
 * gate circuits, each two-input gate one bootstrap (the TFHE gate
 * API in tfhe/encoding.h). This module provides:
 *  - a netlist representation with plaintext and encrypted evaluation
 *    (the encrypted path is the ground truth the tests check against),
 *  - circuit builders (ripple-carry adder, comparator, equality),
 *  - compilation to a scheduler Workload: one stage per topological
 *    level of bootstrapped gates, so the accelerator model can batch
 *    each level's independent bootstraps (Figure 6's grouping).
 */

#ifndef MORPHLING_APPS_CIRCUIT_H
#define MORPHLING_APPS_CIRCUIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/program.h"
#include "tfhe/encoding.h"

namespace morphling::apps {

/** Gate kinds. Input/Const are sources; Not is linear (free); Mux
 *  costs three bootstraps; the rest cost one each. */
enum class GateOp
{
    Input,
    Const,
    Not,
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    Mux,
};

/** A boolean netlist; wire ids are gate indices (SSA-style, inputs
 *  created before use by construction). */
class Circuit
{
  public:
    using Wire = int;

    /** Add a primary input; returns its wire. */
    Wire input();

    /** Add a constant wire. */
    Wire constant(bool value);

    /** Add a unary/binary gate. */
    Wire gate(GateOp op, Wire a, Wire b = -1);

    /** Add a multiplexer: select ? on_true : on_false. */
    Wire mux(Wire select, Wire on_true, Wire on_false);

    /** Mark a wire as a circuit output. */
    void markOutput(Wire wire);

    unsigned numInputs() const { return numInputs_; }
    unsigned numGates() const
    {
        return static_cast<unsigned>(gates_.size());
    }
    const std::vector<Wire> &outputs() const { return outputs_; }

    /** Total bootstraps one evaluation costs. */
    std::uint64_t bootstrapCount() const;

    /** Depth in bootstrapped-gate levels (the critical path the
     *  scheduler cannot parallelize across). */
    unsigned bootstrapDepth() const;

    /** Evaluate on plaintext bits; returns the output wires' values. */
    std::vector<bool> evaluatePlain(const std::vector<bool> &inputs) const;

    /** Evaluate homomorphically; returns output ciphertexts. */
    std::vector<tfhe::LweCiphertext>
    evaluateEncrypted(const tfhe::KeySet &keys,
                      const std::vector<tfhe::LweCiphertext> &inputs)
        const;

    /**
     * Compile to a schedulable workload: one stage per bootstrap
     * level, `count` independent evaluations batched together.
     */
    compiler::Workload toWorkload(const std::string &name,
                                  std::uint64_t count = 1) const;

  private:
    struct Gate
    {
        GateOp op;
        Wire a = -1, b = -1, c = -1;
        bool constValue = false;
    };

    /** Bootstraps this gate costs. */
    static unsigned costOf(GateOp op);

    /** Topological bootstrap level of every gate. */
    std::vector<unsigned> levels() const;

    std::vector<Gate> gates_;
    std::vector<Wire> outputs_;
    unsigned numInputs_ = 0;
};

/**
 * Ripple-carry adder over little-endian bit vectors; appends sum wires
 * (same width) to `sum` and returns the carry-out wire.
 */
Circuit::Wire buildRippleAdder(Circuit &circuit,
                               const std::vector<Circuit::Wire> &a,
                               const std::vector<Circuit::Wire> &b,
                               std::vector<Circuit::Wire> &sum);

/** a >= b over little-endian unsigned bit vectors (one output wire). */
Circuit::Wire buildGreaterEqual(Circuit &circuit,
                                const std::vector<Circuit::Wire> &a,
                                const std::vector<Circuit::Wire> &b);

/** a == b over bit vectors (one output wire). */
Circuit::Wire buildEqual(Circuit &circuit,
                         const std::vector<Circuit::Wire> &a,
                         const std::vector<Circuit::Wire> &b);

} // namespace morphling::apps

#endif // MORPHLING_APPS_CIRCUIT_H
