#include "workload_exec.h"

#include "common/logging.h"
#include "exec/functional_backend.h"
#include "exec/timing_backend.h"

namespace morphling::apps {

compiler::Program
compileWorkload(const compiler::Workload &workload,
                const tfhe::TfheParams &params,
                compiler::SchedulerConfig sched)
{
    return compiler::SwScheduler(params, sched).schedule(workload);
}

arch::SimReport
timeWorkload(const compiler::Workload &workload,
             const arch::ArchConfig &config,
             const tfhe::TfheParams &params,
             compiler::SchedulerConfig sched)
{
    const auto program = compileWorkload(workload, params, sched);
    exec::TimingBackend backend(config, params);
    auto result = backend.run(program, exec::Job{});
    panic_if(!result.hasReport, "timing backend returned no report");
    return result.report;
}

std::vector<tfhe::LweCiphertext>
runBootstrapBatch(const tfhe::KeySet &keys,
                  const std::vector<tfhe::LweCiphertext> &inputs,
                  const std::vector<tfhe::Torus32> &lut,
                  const tfhe::BatchOptions &opts)
{
    if (inputs.empty())
        return {};
    const auto program =
        compiler::SwScheduler(keys.params)
            .scheduleBootstrapBatch(inputs.size());
    exec::FunctionalBackend backend(keys);
    exec::Job job;
    job.inputs = &inputs;
    job.lut = &lut;
    job.options = opts;
    auto result = backend.run(program, job);
    panic_if(!result.hasOutputs,
             "functional backend returned no outputs");
    return std::move(result.outputs);
}

} // namespace morphling::apps
