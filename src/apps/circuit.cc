#include "circuit.h"

#include "common/logging.h"

namespace morphling::apps {

using tfhe::KeySet;
using tfhe::LweCiphertext;

Circuit::Wire
Circuit::input()
{
    Gate g;
    g.op = GateOp::Input;
    gates_.push_back(g);
    ++numInputs_;
    return static_cast<Wire>(gates_.size() - 1);
}

Circuit::Wire
Circuit::constant(bool value)
{
    Gate g;
    g.op = GateOp::Const;
    g.constValue = value;
    gates_.push_back(g);
    return static_cast<Wire>(gates_.size() - 1);
}

Circuit::Wire
Circuit::gate(GateOp op, Wire a, Wire b)
{
    panic_if(op == GateOp::Input || op == GateOp::Const ||
                 op == GateOp::Mux,
             "use input()/constant()/mux()");
    panic_if(a < 0 || a >= static_cast<Wire>(gates_.size()),
             "dangling wire a");
    const bool unary = op == GateOp::Not;
    panic_if(!unary && (b < 0 || b >= static_cast<Wire>(gates_.size())),
             "dangling wire b");
    Gate g;
    g.op = op;
    g.a = a;
    g.b = unary ? -1 : b;
    gates_.push_back(g);
    return static_cast<Wire>(gates_.size() - 1);
}

Circuit::Wire
Circuit::mux(Wire select, Wire on_true, Wire on_false)
{
    panic_if(select < 0 || on_true < 0 || on_false < 0 ||
                 select >= static_cast<Wire>(gates_.size()) ||
                 on_true >= static_cast<Wire>(gates_.size()) ||
                 on_false >= static_cast<Wire>(gates_.size()),
             "dangling mux wire");
    Gate g;
    g.op = GateOp::Mux;
    g.a = select;
    g.b = on_true;
    g.c = on_false;
    gates_.push_back(g);
    return static_cast<Wire>(gates_.size() - 1);
}

void
Circuit::markOutput(Wire wire)
{
    panic_if(wire < 0 || wire >= static_cast<Wire>(gates_.size()),
             "dangling output wire");
    outputs_.push_back(wire);
}

unsigned
Circuit::costOf(GateOp op)
{
    switch (op) {
      case GateOp::Input:
      case GateOp::Const:
      case GateOp::Not:
        return 0;
      case GateOp::Mux:
        return 3;
      default:
        return 1;
    }
}

std::uint64_t
Circuit::bootstrapCount() const
{
    std::uint64_t total = 0;
    for (const auto &g : gates_)
        total += costOf(g.op);
    return total;
}

std::vector<unsigned>
Circuit::levels() const
{
    // Level of a gate = number of bootstrapped gates on its longest
    // input path, counting itself if it bootstraps. Linear gates stay
    // on their inputs' level.
    std::vector<unsigned> level(gates_.size(), 0);
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const auto &g = gates_[i];
        unsigned in_level = 0;
        for (Wire w : {g.a, g.b, g.c}) {
            if (w >= 0)
                in_level = std::max(in_level, level[w]);
        }
        level[i] = in_level + (costOf(g.op) > 0 ? 1 : 0);
    }
    return level;
}

unsigned
Circuit::bootstrapDepth() const
{
    unsigned depth = 0;
    const auto lv = levels();
    for (auto l : lv)
        depth = std::max(depth, l);
    return depth;
}

std::vector<bool>
Circuit::evaluatePlain(const std::vector<bool> &inputs) const
{
    panic_if(inputs.size() != numInputs_, "expected ", numInputs_,
             " inputs, got ", inputs.size());
    std::vector<bool> value(gates_.size());
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const auto &g = gates_[i];
        switch (g.op) {
          case GateOp::Input:
            value[i] = inputs[next_input++];
            break;
          case GateOp::Const:
            value[i] = g.constValue;
            break;
          case GateOp::Not:
            value[i] = !value[g.a];
            break;
          case GateOp::And:
            value[i] = value[g.a] && value[g.b];
            break;
          case GateOp::Or:
            value[i] = value[g.a] || value[g.b];
            break;
          case GateOp::Xor:
            value[i] = value[g.a] != value[g.b];
            break;
          case GateOp::Nand:
            value[i] = !(value[g.a] && value[g.b]);
            break;
          case GateOp::Nor:
            value[i] = !(value[g.a] || value[g.b]);
            break;
          case GateOp::Xnor:
            value[i] = value[g.a] == value[g.b];
            break;
          case GateOp::Mux:
            value[i] = value[g.a] ? value[g.b] : value[g.c];
            break;
        }
    }
    std::vector<bool> out;
    out.reserve(outputs_.size());
    for (Wire w : outputs_)
        out.push_back(value[w]);
    return out;
}

std::vector<LweCiphertext>
Circuit::evaluateEncrypted(const KeySet &keys,
                           const std::vector<LweCiphertext> &inputs)
    const
{
    panic_if(inputs.size() != numInputs_, "expected ", numInputs_,
             " input ciphertexts, got ", inputs.size());
    std::vector<LweCiphertext> value(gates_.size());
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < gates_.size(); ++i) {
        const auto &g = gates_[i];
        switch (g.op) {
          case GateOp::Input:
            value[i] = inputs[next_input++];
            break;
          case GateOp::Const:
            value[i] = tfhe::trivialBit(keys, g.constValue);
            break;
          case GateOp::Not:
            value[i] = tfhe::gateNot(value[g.a]);
            break;
          case GateOp::And:
            value[i] = tfhe::gateAnd(keys, value[g.a], value[g.b]);
            break;
          case GateOp::Or:
            value[i] = tfhe::gateOr(keys, value[g.a], value[g.b]);
            break;
          case GateOp::Xor:
            value[i] = tfhe::gateXor(keys, value[g.a], value[g.b]);
            break;
          case GateOp::Nand:
            value[i] = tfhe::gateNand(keys, value[g.a], value[g.b]);
            break;
          case GateOp::Nor:
            value[i] = tfhe::gateNor(keys, value[g.a], value[g.b]);
            break;
          case GateOp::Xnor:
            value[i] = tfhe::gateXnor(keys, value[g.a], value[g.b]);
            break;
          case GateOp::Mux:
            value[i] = tfhe::gateMux(keys, value[g.a], value[g.b],
                                     value[g.c]);
            break;
        }
    }
    std::vector<LweCiphertext> out;
    out.reserve(outputs_.size());
    for (Wire w : outputs_)
        out.push_back(value[w]);
    return out;
}

compiler::Workload
Circuit::toWorkload(const std::string &name, std::uint64_t count) const
{
    // One stage per bootstrap level; all `count` evaluations of the
    // circuit run the same level concurrently.
    const auto lv = levels();
    std::vector<std::uint64_t> per_level(bootstrapDepth() + 1, 0);
    for (std::size_t i = 0; i < gates_.size(); ++i)
        per_level[lv[i]] += costOf(gates_[i].op);

    compiler::Workload w;
    w.name = name;
    for (std::size_t level = 1; level < per_level.size(); ++level) {
        if (per_level[level] == 0)
            continue;
        w.stages.push_back({per_level[level] * count, 0});
    }
    return w;
}

Circuit::Wire
buildRippleAdder(Circuit &circuit, const std::vector<Circuit::Wire> &a,
                 const std::vector<Circuit::Wire> &b,
                 std::vector<Circuit::Wire> &sum)
{
    panic_if(a.size() != b.size(), "operand width mismatch");
    Circuit::Wire carry = circuit.constant(false);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto a_xor_b = circuit.gate(GateOp::Xor, a[i], b[i]);
        sum.push_back(circuit.gate(GateOp::Xor, a_xor_b, carry));
        const auto gen = circuit.gate(GateOp::And, a[i], b[i]);
        const auto prop = circuit.gate(GateOp::And, a_xor_b, carry);
        carry = circuit.gate(GateOp::Or, gen, prop);
    }
    return carry;
}

Circuit::Wire
buildGreaterEqual(Circuit &circuit, const std::vector<Circuit::Wire> &a,
                  const std::vector<Circuit::Wire> &b)
{
    panic_if(a.size() != b.size(), "operand width mismatch");
    // From LSB up: ge = (a_i > b_i) | ((a_i == b_i) & ge_below);
    // a_i > b_i  ==  a_i & !b_i.
    Circuit::Wire ge = circuit.constant(true);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto not_b = circuit.gate(GateOp::Not, b[i]);
        const auto gt = circuit.gate(GateOp::And, a[i], not_b);
        const auto eq = circuit.gate(GateOp::Xnor, a[i], b[i]);
        const auto keep = circuit.gate(GateOp::And, eq, ge);
        ge = circuit.gate(GateOp::Or, gt, keep);
    }
    return ge;
}

Circuit::Wire
buildEqual(Circuit &circuit, const std::vector<Circuit::Wire> &a,
           const std::vector<Circuit::Wire> &b)
{
    panic_if(a.size() != b.size() || a.empty(),
             "operand width mismatch");
    Circuit::Wire acc = circuit.gate(GateOp::Xnor, a[0], b[0]);
    for (std::size_t i = 1; i < a.size(); ++i) {
        const auto bit_eq = circuit.gate(GateOp::Xnor, a[i], b[i]);
        acc = circuit.gate(GateOp::And, acc, bit_eq);
    }
    return acc;
}

} // namespace morphling::apps
