/**
 * @file
 * The apps-layer bridge onto the execution-backend stack: every
 * application workload flows through one path — compile the workload to
 * a Morphling Program, then hand that single artifact to an execution
 * backend (docs/execution_model.md). Benchmarks time it on the
 * TimingBackend; encrypted inference interprets it on the
 * FunctionalBackend. No app calls the accelerator or the tfhe batch
 * loop directly anymore.
 */

#ifndef MORPHLING_APPS_WORKLOAD_EXEC_H
#define MORPHLING_APPS_WORKLOAD_EXEC_H

#include <vector>

#include "arch/accelerator.h"
#include "compiler/program.h"
#include "compiler/sw_scheduler.h"
#include "tfhe/batch.h"
#include "tfhe/keyset.h"

namespace morphling::apps {

/** Compile one application workload to a Morphling Program. */
compiler::Program
compileWorkload(const compiler::Workload &workload,
                const tfhe::TfheParams &params,
                compiler::SchedulerConfig sched = {});

/**
 * Simulate one workload on the cycle model via the TimingBackend:
 * compile to a Program, retire it through exec::TimingBackend, return
 * the cycle-model report. This is the path the Table VI benchmark
 * times.
 */
arch::SimReport
timeWorkload(const compiler::Workload &workload,
             const arch::ArchConfig &config,
             const tfhe::TfheParams &params,
             compiler::SchedulerConfig sched = {});

/**
 * Bootstrap every ciphertext in `inputs` against one LUT by compiling
 * a single-stage Program and interpreting it on the FunctionalBackend.
 * Results are in input order and bit-identical to
 * tfhe::batchBootstrap. This is the building block encrypted inference
 * (QuantizedMlp::inferEncrypted) batches its per-layer activations
 * through.
 */
std::vector<tfhe::LweCiphertext>
runBootstrapBatch(const tfhe::KeySet &keys,
                  const std::vector<tfhe::LweCiphertext> &inputs,
                  const std::vector<tfhe::Torus32> &lut,
                  const tfhe::BatchOptions &opts = {});

} // namespace morphling::apps

#endif // MORPHLING_APPS_WORKLOAD_EXEC_H
