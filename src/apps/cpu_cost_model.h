/**
 * @file
 * CPU execution-time model for the Table V / Table VI comparisons.
 *
 * The paper compares against Concrete on a 64-core Xeon Gold 6226R. We
 * cannot reproduce that machine, so CPU times come from two calibrated
 * sources (both reported by the benches):
 *
 *  - paperConcrete(): per-bootstrap latencies published in Table V for
 *    sets I-III, extrapolated to the other sets by the closed-form
 *    operation count ratio (opcount.h).
 *  - measured(): one programmable bootstrap of *this repository's* TFHE
 *    library timed on the current host (single thread).
 *
 * Application time = bootstraps * perPbs / (cores * efficiency)
 *                  + linear-op time, with bootstraps parallelized
 * across cores (they are independent within a stage) and linear MACs
 * running at a calibrated per-core MAC rate over (n+1)-word LWE
 * ciphertexts.
 */

#ifndef MORPHLING_APPS_CPU_COST_MODEL_H
#define MORPHLING_APPS_CPU_COST_MODEL_H

#include "compiler/program.h"
#include "tfhe/params.h"

namespace morphling::apps {

/** A calibrated CPU. */
struct CpuCostModel
{
    double perPbsMs = 0;       //!< single-thread ms per bootstrap
    unsigned cores = 64;       //!< Xeon Gold 6226R of the paper
    double parallelEff = 0.7;  //!< multicore scaling efficiency
    double macGops = 3.0;      //!< per-core 32-bit MACs/s (GHz-ish)
    std::string source;        //!< "paper(Concrete)" or "measured"

    /** Seconds to run `count` independent bootstraps. */
    double pbsSeconds(std::uint64_t count) const;

    /** Seconds for ciphertext-scalar MACs over (n+1)-word LWEs. */
    double linearSeconds(std::uint64_t macs, unsigned lwe_dim) const;

    /** Seconds for a full staged workload. */
    double workloadSeconds(const compiler::Workload &workload,
                           unsigned lwe_dim) const;

    /** Single-thread bootstrap latency in ms (Table V CPU rows). */
    double
    latencyMs() const
    {
        return perPbsMs;
    }

    /** Single-thread throughput in bootstraps/s (Table V CPU rows). */
    double
    throughputBs() const
    {
        return 1000.0 / perPbsMs;
    }
};

/** CPU model from the paper's published Concrete numbers (Table V),
 *  op-count-extrapolated for sets the paper does not list. */
CpuCostModel paperConcreteCpu(const tfhe::TfheParams &params);

/** CPU model measured from this repository's TFHE implementation on
 *  the current host (runs `samples` bootstraps; expensive). */
CpuCostModel measuredCpu(const tfhe::TfheParams &params,
                         unsigned samples = 3);

} // namespace morphling::apps

#endif // MORPHLING_APPS_CPU_COST_MODEL_H
