#include "xgboost_model.h"

#include "common/logging.h"

namespace morphling::apps {

std::int32_t
Tree::predict(const std::vector<std::uint32_t> &features) const
{
    unsigned node = 0;
    for (unsigned level = 0; level < depth; ++level) {
        const bool go_right =
            features[featureIndex[node]] >= threshold[node];
        node = 2 * node + (go_right ? 2 : 1);
    }
    return leafScore[node - internalNodes()];
}

XgboostModel
XgboostModel::random(unsigned estimators, unsigned depth,
                     unsigned num_features, unsigned feature_bits,
                     Rng &rng)
{
    fatal_if(depth == 0 || estimators == 0 || num_features == 0,
             "degenerate model");
    XgboostModel model;
    model.featureBits = feature_bits;
    model.numFeatures = num_features;
    model.trees.reserve(estimators);
    const std::uint32_t feature_range = 1u << feature_bits;
    for (unsigned t = 0; t < estimators; ++t) {
        Tree tree;
        tree.depth = depth;
        for (unsigned n = 0; n < tree.internalNodes(); ++n) {
            tree.featureIndex.push_back(static_cast<unsigned>(
                rng.nextBelow(num_features)));
            tree.threshold.push_back(static_cast<std::uint32_t>(
                rng.nextBelow(feature_range)));
        }
        for (unsigned l = 0; l < tree.leaves(); ++l) {
            // Small signed leaf scores, XGBoost-style.
            tree.leafScore.push_back(
                static_cast<std::int32_t>(rng.nextBelow(7)) - 3);
        }
        model.trees.push_back(std::move(tree));
    }
    return model;
}

std::int32_t
XgboostModel::predict(const std::vector<std::uint32_t> &features) const
{
    std::int32_t score = 0;
    for (const auto &tree : trees)
        score += tree.predict(features);
    return score;
}

namespace {

using circuit::Circuit;
using circuit::Wire;

/** Constant wires for a two's-complement value. */
std::vector<Wire>
constantBits(Circuit &c, std::int32_t value, unsigned bits)
{
    std::vector<Wire> out;
    for (unsigned i = 0; i < bits; ++i)
        out.push_back(c.constant(((value >> i) & 1) != 0));
    return out;
}

/** Mux two bit vectors. */
std::vector<Wire>
muxBits(Circuit &c, Wire select, const std::vector<Wire> &on_true,
        const std::vector<Wire> &on_false)
{
    std::vector<Wire> out;
    for (std::size_t i = 0; i < on_true.size(); ++i)
        out.push_back(c.mux(select, on_true[i], on_false[i]));
    return out;
}

/** Recursive oblivious descent: the selected leaf's score bits. */
std::vector<Wire>
selectLeaf(Circuit &c, const Tree &tree,
           const std::vector<Wire> &decisions, unsigned node,
           unsigned score_bits)
{
    if (node >= tree.internalNodes()) {
        return constantBits(
            c, tree.leafScore[node - tree.internalNodes()],
            score_bits);
    }
    const auto left =
        selectLeaf(c, tree, decisions, 2 * node + 1, score_bits);
    const auto right =
        selectLeaf(c, tree, decisions, 2 * node + 2, score_bits);
    // decision true = feature >= threshold = go right.
    return muxBits(c, decisions[node], right, left);
}

} // namespace

circuit::Circuit
XgboostModel::buildCircuit(unsigned score_bits) const
{
    Circuit c;
    // Feature inputs, LSB first per feature.
    std::vector<std::vector<Wire>> feature_wires(numFeatures);
    for (auto &bits : feature_wires) {
        for (unsigned i = 0; i < featureBits; ++i)
            bits.push_back(c.bitInput());
    }

    std::vector<Wire> score = constantBits(c, 0, score_bits);
    for (const auto &tree : trees) {
        // All node comparisons of a tree are independent (oblivious
        // evaluation touches every node).
        std::vector<Wire> decisions;
        decisions.reserve(tree.internalNodes());
        for (unsigned n = 0; n < tree.internalNodes(); ++n) {
            const auto threshold_bits = constantBits(
                c, static_cast<std::int32_t>(tree.threshold[n]),
                featureBits);
            decisions.push_back(circuit::buildGreaterEqual(
                c, feature_wires[tree.featureIndex[n]],
                threshold_bits));
        }
        const auto leaf =
            selectLeaf(c, tree, decisions, 0, score_bits);
        std::vector<Wire> sum;
        circuit::buildRippleAdder(c, score, leaf,
                                  sum); // carry-out dropped:
                                        // mod 2^score_bits
        score = std::move(sum);
    }
    for (auto w : score)
        c.markOutput(w);
    return c;
}

compiler::Workload
XgboostModel::workload(unsigned score_bits, std::uint64_t batch) const
{
    return buildCircuit(score_bits)
        .toWorkload("xgboost-circuit", batch);
}

} // namespace morphling::apps
