/**
 * @file
 * A functional XGBoost-style tree-ensemble model evaluated obliviously
 * over TFHE (the paper's first application benchmark: "100 estimators
 * with a maximum tree depth of six, bootstrapping utilized during
 * comparison operations").
 *
 * Oblivious evaluation: every internal node's comparison
 * feature[f] >= threshold runs as an encrypted comparator circuit (one
 * bootstrap per bit level); the leaf value is selected by a mux tree
 * descending the decisions. The server learns neither the feature
 * values nor the path taken.
 */

#ifndef MORPHLING_APPS_XGBOOST_MODEL_H
#define MORPHLING_APPS_XGBOOST_MODEL_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "compiler/program.h"

namespace morphling::apps {

/** One regression tree: a perfect binary tree of the given depth.
 *  Node i's children are 2i+1 / 2i+2; leaves carry integer scores. */
struct Tree
{
    unsigned depth = 0;
    std::vector<unsigned> featureIndex;   //!< per internal node
    std::vector<std::uint32_t> threshold; //!< per internal node
    std::vector<std::int32_t> leafScore;  //!< 2^depth leaves

    unsigned
    internalNodes() const
    {
        return (1u << depth) - 1;
    }
    unsigned
    leaves() const
    {
        return 1u << depth;
    }

    /** Plaintext prediction. */
    std::int32_t predict(const std::vector<std::uint32_t> &features)
        const;
};

/** The ensemble. */
struct XgboostModel
{
    unsigned featureBits = 4; //!< quantized feature width
    unsigned numFeatures = 0;
    std::vector<Tree> trees;

    /** Random model for tests/demos (deterministic from the seed). */
    static XgboostModel random(unsigned estimators, unsigned depth,
                               unsigned num_features,
                               unsigned feature_bits, Rng &rng);

    /** Plaintext ensemble score: sum of tree predictions. */
    std::int32_t predict(const std::vector<std::uint32_t> &features)
        const;

    /**
     * Build the oblivious evaluation circuit: inputs are the feature
     * bits (numFeatures * featureBits wires, LSB first per feature);
     * outputs are the two's-complement bits of the ensemble score.
     *
     * @param score_bits output width (must fit the score range)
     */
    circuit::Circuit buildCircuit(unsigned score_bits) const;

    /** Scheduler workload for `batch` parallel inferences of the
     *  compiled circuit. */
    compiler::Workload workload(unsigned score_bits,
                                std::uint64_t batch = 1) const;
};

} // namespace morphling::apps

#endif // MORPHLING_APPS_XGBOOST_MODEL_H
