/**
 * @file
 * The paper's application benchmarks (Section VI-A) expressed as
 * schedulable workloads: per-stage programmable-bootstrap counts and
 * ciphertext-scalar MAC counts.
 *
 * - XGBoost classifier: 100 estimators, depth 6. Oblivious tree
 *   evaluation bootstraps one encrypted comparison per internal node
 *   (100 * (2^6 - 1) = 6,300) and aggregates leaves linearly.
 * - DeepCNN-X (X = 20/50/100): 8x8x1 input; 3x3 conv (2 filters);
 *   3x3 conv (92 filters, stride 2); X 1x1 conv layers (92 filters);
 *   2x2 conv (16 filters); 10-neuron FC. Bootstrapping implements the
 *   ReLUs ("each with a filter size of 92, which requires 368 ReLU
 *   operations" — our shape calculator reproduces that 368).
 * - VGG-9: 32x32x3 input, six 3x3 convs (64,64,128,128,256,256),
 *   2x2 average pooling after conv2 and conv4, FC 512/512/10.
 */

#ifndef MORPHLING_APPS_WORKLOADS_H
#define MORPHLING_APPS_WORKLOADS_H

#include <cstdint>
#include <vector>

#include "compiler/program.h"

namespace morphling::apps {

/** Shape of one convolutional / FC layer for workload accounting. */
struct LayerSpec
{
    unsigned inHeight = 1;
    unsigned inWidth = 1;
    unsigned inChannels = 1;
    unsigned kernel = 1;  //!< square kernel side (1 for FC over flat in)
    unsigned filters = 1; //!< output channels (neurons for FC)
    unsigned stride = 1;
    bool reluAfter = true; //!< bootstrapped activation on each output

    unsigned outHeight() const;
    unsigned outWidth() const;
    /** Output activations = outH * outW * filters. */
    std::uint64_t outputs() const;
    /** Plain MACs: outputs * kernel^2 * inChannels. */
    std::uint64_t macs() const;
};

/** Average-pool stage: linear, no bootstraps. */
struct PoolSpec
{
    unsigned outHeight, outWidth, channels, window;

    std::uint64_t
    macs() const
    {
        return std::uint64_t{outHeight} * outWidth * channels * window *
               window;
    }
};

/** One workload stage per layer: ReLU bootstraps + that layer's MACs. */
compiler::Workload cnnWorkload(const std::string &name,
                               const std::vector<LayerSpec> &layers);

/** XGBoost: `estimators` trees of the given depth. */
compiler::Workload xgboostWorkload(unsigned estimators = 100,
                                   unsigned depth = 6);

/** DeepCNN-X from the paper's description. */
compiler::Workload deepCnnWorkload(unsigned x_layers);

/** VGG-9 for CIFAR-10 from the paper's description. */
compiler::Workload vgg9Workload();

} // namespace morphling::apps

#endif // MORPHLING_APPS_WORKLOADS_H
