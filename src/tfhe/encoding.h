/**
 * @file
 * Message encodings on top of the raw torus API.
 *
 * Two conventions are provided:
 *  - Boolean: bits encoded at +-1/8, evaluated with gate bootstrapping
 *    (the classic CGGI convention; used by the XGBoost comparators).
 *  - Padded integers: m in [0, p) encoded at m/(2p), leaving one bit of
 *    padding so programmable bootstrapping can evaluate arbitrary LUTs
 *    (the Concrete convention; used by the quantized NN workloads).
 */

#ifndef MORPHLING_TFHE_ENCODING_H
#define MORPHLING_TFHE_ENCODING_H

#include <cstdint>
#include <functional>
#include <vector>

#include "tfhe/bootstrap.h"

namespace morphling::tfhe {

// --- Boolean convention -------------------------------------------------

/** Torus encoding of boolean true (+1/8); false is the negation. */
Torus32 boolMu();

/** Encrypt one bit under the LWE key. */
LweCiphertext encryptBit(const KeySet &keys, bool bit, Rng &rng);

/** Decrypt one bit (sign of the phase). */
bool decryptBit(const KeySet &keys, const LweCiphertext &ct);

/** Trivial (noiseless) encryption of a constant bit. */
LweCiphertext trivialBit(const KeySet &keys, bool bit);

/** The two-input bootstrapped gate kinds of the boolean convention.
 *  Every gate is one linear combination followed by one sign
 *  bootstrap; the enum is shared by the gate functions below, the
 *  circuit IR (circuit/circuit.h) and its text format. */
enum class BoolGate : std::uint8_t
{
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor
};

/** Stable lower-case name ("and", "xor", ...) for logs and the
 *  circuit text format. */
const char *boolGateName(BoolGate gate);

/**
 * The linear pre-bootstrap combination of a two-input gate: the
 * ciphertext whose *sign* the gate's sign bootstrap extracts back to
 * +-1/8. Exposed so the circuit executor's compiled-Program path and
 * the direct gate functions below compute bit-identical ciphertexts
 * from the same arithmetic.
 */
LweCiphertext gateLinear(BoolGate gate, const LweCiphertext &a,
                         const LweCiphertext &b);

/** Apply one bootstrapped two-input gate (gateLinear + sign
 *  bootstrap). The named gate functions below are thin wrappers. */
LweCiphertext gateApply(const KeySet &keys, BoolGate gate,
                        const LweCiphertext &a, const LweCiphertext &b);

/** @{ Two-input bootstrapped gates. Each costs one bootstrap. */
LweCiphertext gateNand(const KeySet &keys, const LweCiphertext &a,
                       const LweCiphertext &b);
LweCiphertext gateAnd(const KeySet &keys, const LweCiphertext &a,
                      const LweCiphertext &b);
LweCiphertext gateOr(const KeySet &keys, const LweCiphertext &a,
                     const LweCiphertext &b);
LweCiphertext gateNor(const KeySet &keys, const LweCiphertext &a,
                      const LweCiphertext &b);
LweCiphertext gateXor(const KeySet &keys, const LweCiphertext &a,
                      const LweCiphertext &b);
LweCiphertext gateXnor(const KeySet &keys, const LweCiphertext &a,
                       const LweCiphertext &b);
/** @} */

/** NOT is linear: free (no bootstrap). */
LweCiphertext gateNot(const LweCiphertext &a);

/** MUX(select, on_true, on_false); costs three bootstraps. */
LweCiphertext gateMux(const KeySet &keys, const LweCiphertext &select,
                      const LweCiphertext &on_true,
                      const LweCiphertext &on_false);

// --- Padded-integer convention ------------------------------------------

/** Encode m in [0, p) with one padding bit: m / (2p). */
Torus32 encodePadded(std::uint32_t message, std::uint32_t space);

/** Encrypt a padded integer message. */
LweCiphertext encryptPadded(const KeySet &keys, std::uint32_t message,
                            std::uint32_t space, Rng &rng);

/** Decrypt a padded integer message. */
std::uint32_t decryptPadded(const KeySet &keys, const LweCiphertext &ct,
                            std::uint32_t space);

/**
 * Build a bootstrap LUT for f over a padded p-value space: entry m is
 * the padded encoding of f(m) mod p, so the bootstrap output is again a
 * valid padded message ready for further computation.
 */
std::vector<Torus32>
makePaddedLut(std::uint32_t space,
              const std::function<std::uint32_t(std::uint32_t)> &f);

/** LUT for the quantized ReLU used by the CNN workloads: treats the
 *  upper half of [0, p) as negative values and clamps them to 0. */
std::vector<Torus32> makeReluLut(std::uint32_t space);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_ENCODING_H
