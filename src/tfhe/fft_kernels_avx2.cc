/**
 * @file
 * AVX2 tier (W = 4 doubles) of the batched negacyclic FFT kernels.
 * Compiled with -mavx2 -ffp-contract=off on x86-64; on other targets
 * (or compilers without AVX2 support) the factory degrades to nullptr
 * and the dispatcher never offers the tier.
 *
 * No FMA intrinsics on purpose: separate mul/add keeps each lane's
 * rounding identical to the scalar path (the bit-identity contract of
 * fft_kernels_impl.h).
 */

#include "tfhe/fft_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "tfhe/fft_kernels_impl.h"

namespace morphling::tfhe::detail {
namespace {

struct Avx2Traits
{
    static constexpr unsigned kWidth = 4;
    using Vec = __m256d;

    static Vec load(const double *p) { return _mm256_loadu_pd(p); }
    static void store(double *p, Vec v) { _mm256_storeu_pd(p, v); }
    static Vec splat(double x) { return _mm256_set1_pd(x); }
    static Vec add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
    static Vec sub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
    static Vec mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
    static Vec cvtInt32(const std::int32_t *p)
    {
        return _mm256_cvtepi32_pd(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p)));
    }

    /** 4x4 in-register transpose (unpack pairs, then cross 128-bit
     *  lanes). */
    static void transpose(Vec *r)
    {
        const __m256d t0 = _mm256_unpacklo_pd(r[0], r[1]);
        const __m256d t1 = _mm256_unpackhi_pd(r[0], r[1]);
        const __m256d t2 = _mm256_unpacklo_pd(r[2], r[3]);
        const __m256d t3 = _mm256_unpackhi_pd(r[2], r[3]);
        r[0] = _mm256_permute2f128_pd(t0, t2, 0x20);
        r[1] = _mm256_permute2f128_pd(t1, t3, 0x20);
        r[2] = _mm256_permute2f128_pd(t0, t2, 0x31);
        r[3] = _mm256_permute2f128_pd(t1, t3, 0x31);
    }
};

} // namespace

const BatchKernels *
avx2BatchKernels()
{
    static const BatchKernels k = makeBatchKernels<Avx2Traits>("avx2");
    return &k;
}

} // namespace morphling::tfhe::detail

#else // !__AVX2__

namespace morphling::tfhe::detail {

const BatchKernels *
avx2BatchKernels()
{
    return nullptr;
}

} // namespace morphling::tfhe::detail

#endif
