/**
 * @file
 * Large-precision integers over TFHE: radix-decomposed multi-ciphertext
 * encodings.
 *
 * "To keep the ciphertext parameter small, the TFHE scheme encrypts
 * large-precision plaintext into multiple ciphertexts. From a hardware
 * perspective, the operation can be seen as the computation of multiple
 * small-parameter ciphertexts rather than a single large-parameter
 * ciphertext." (Section I.) This module implements that representation:
 * a value is a little-endian vector of base-B digits, each digit one
 * LWE ciphertext over a padded message space with headroom, so several
 * homomorphic additions can accumulate before one carry-propagation
 * pass (two programmable bootstraps per digit) renormalizes.
 */

#ifndef MORPHLING_TFHE_RADIX_H
#define MORPHLING_TFHE_RADIX_H

#include <cstdint>
#include <vector>

#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"

namespace morphling::tfhe {

/** A radix-B big integer: digit i encrypts value_i in [0, B). */
class RadixCiphertext
{
  public:
    RadixCiphertext() = default;

    /**
     * Encrypt `value` as num_digits base-`base` digits.
     *
     * @param base digit radix; base^2 must fit the padded message
     *             space (base^2 slots), so base <= 2^? with
     *             2 * base^2 <= 2N. base = 4 is the sweet spot.
     */
    static RadixCiphertext encrypt(const KeySet &keys,
                                   std::uint64_t value,
                                   unsigned num_digits,
                                   std::uint32_t base, Rng &rng);

    /** Decrypt, assuming digits are normalized (carries propagated). */
    std::uint64_t decrypt(const KeySet &keys) const;

    unsigned numDigits() const
    {
        return static_cast<unsigned>(digits_.size());
    }
    std::uint32_t base() const { return base_; }

    /** Homomorphic maximum value a digit may currently hold. */
    std::uint32_t digitMagnitude() const { return magnitude_; }

    /**
     * Digit-wise addition, no bootstrapping. Panics if the result
     * could overflow the digit headroom — call propagateCarries()
     * first.
     */
    void addAssign(const RadixCiphertext &other);

    /** Add a small plaintext constant (digit-decomposed). */
    void addPlain(std::uint64_t value);

    /** Multiply by a small plaintext scalar (digit-wise; scalar *
     *  (base-1) must stay inside the headroom). */
    void scalarMulAssign(std::uint32_t scalar);

    /**
     * Renormalize every digit to [0, base) and push carries upward:
     * two programmable bootstraps per digit (value-mod-base and
     * carry-extract), the multi-ciphertext workload pattern Morphling
     * batches across its XPU rows.
     *
     * @return number of bootstraps performed
     */
    unsigned propagateCarries(const KeySet &keys);

    /** Number of additions that can still be absorbed before carries
     *  must be propagated. */
    unsigned additionsBeforeOverflow() const;

    const LweCiphertext &digit(unsigned i) const { return digits_[i]; }

  private:
    std::uint32_t messageSpace() const { return base_ * base_; }

    std::vector<LweCiphertext> digits_;
    std::uint32_t base_ = 0;
    std::uint32_t magnitude_ = 0; //!< max value a digit can hold now
};

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_RADIX_H
