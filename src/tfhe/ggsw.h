/**
 * @file
 * Gadget decomposition, GGSW ciphertexts and the external product
 * (Section II-B).
 *
 * The external product BSK_i [.] Lambda multiplies the signed gadget
 * decomposition of a GLWE ciphertext (a vector of (k+1)*l_b integer
 * polynomials, equation (1)) by the GGSW matrix of (k+1)*l_b x (k+1)
 * torus polynomials (equation (2)). It is the computational core of
 * bootstrapping: (k+1)^2 * l_b polynomial multiplications per
 * invocation, n invocations per bootstrap.
 */

#ifndef MORPHLING_TFHE_GGSW_H
#define MORPHLING_TFHE_GGSW_H

#include <vector>

#include "common/rng.h"
#include "tfhe/fft.h"
#include "tfhe/glwe.h"
#include "tfhe/params.h"

namespace morphling::tfhe {

class BootstrapWorkspace;

/**
 * Precomputed constants of one signed gadget decomposition: the digit
 * mask, the centering half-base, and the combined centering + rounding
 * offset that the scalar path used to rebuild per coefficient.
 */
struct GadgetPlan
{
    unsigned baseBits = 0;
    unsigned levels = 0;
    std::uint32_t mask = 0;   //!< beta - 1
    std::uint32_t offset = 0; //!< centering + rounding offset
    std::int32_t half = 0;    //!< beta / 2
};

/** Build the plan for digits in base 2^base_bits over `levels` levels. */
GadgetPlan makeGadgetPlan(unsigned base_bits, unsigned levels);

/**
 * Signed gadget decomposition of one torus polynomial.
 *
 * Writes `levels` integer polynomials with digits in
 * [-beta/2, beta/2) such that
 * sum_j digits[j] * q/beta^(j+1) ~ poly (error < q / (2 beta^l)).
 * This is the "bit-slicing and rounding" the decomposition unit
 * performs in hardware (Section V-A1).
 */
void gadgetDecompose(const TorusPolynomial &poly, unsigned base_bits,
                     unsigned levels, std::vector<IntPolynomial> &out);

/**
 * Hot-path decomposition against a prebuilt plan: level-outer loops of
 * shift/mask/subtract over the whole polynomial (auto-vectorizable),
 * no per-coefficient constant recomputation. `out` is only reshaped
 * when its geometry mismatches, so repeat calls are allocation-free.
 */
void gadgetDecomposePlanned(const TorusPolynomial &poly,
                            const GadgetPlan &plan,
                            std::vector<IntPolynomial> &out);

/**
 * Pointer-range variant of the planned decomposition: writes the
 * plan.levels digit polynomials into out[0..levels), which must already
 * have the polynomial's degree. Lets the workspace lay the digit
 * polynomials of all GLWE components out contiguously for one batched
 * forward FFT.
 */
void gadgetDecomposePlannedInto(const TorusPolynomial &poly,
                                const GadgetPlan &plan,
                                IntPolynomial *out);

/** Scalar version, used by tests and by key switching internals. */
void gadgetDecomposeScalar(Torus32 value, unsigned base_bits,
                           unsigned levels, std::int32_t *digits);

/**
 * A GGSW ciphertext: (k+1)*l_b GLWE rows.
 *
 * Row (u, j) (u in [0,k], j in [0,l_b)) is GLWE(0) plus
 * m * q/beta^(j+1) added to component u. The bootstrapping key is one
 * GGSW per LWE key bit.
 */
class GgswCiphertext
{
  public:
    GgswCiphertext() = default;

    /** Encrypt the small integer message (for the BSK: a key bit). */
    static GgswCiphertext encrypt(const GlweKey &key, std::int32_t message,
                                  double stddev, Rng &rng);

    unsigned numRows() const
    {
        return static_cast<unsigned>(rows_.size());
    }
    const GlweCiphertext &row(unsigned r) const { return rows_[r]; }

    unsigned baseBits() const { return baseBits_; }
    unsigned levels() const { return levels_; }

  private:
    std::vector<GlweCiphertext> rows_; //!< (k+1)*l_b GLWE ciphertexts
    unsigned baseBits_ = 0;
    unsigned levels_ = 0;
};

/**
 * A GGSW ciphertext pre-transformed into the Fourier domain: the format
 * the hardware keeps in the Private-A2 buffer ("pre-computed
 * transform-domain data of BSK", Section V-A).
 */
class FourierGgsw
{
  public:
    FourierGgsw() = default;

    /** Transform every polynomial of a GGSW ciphertext. */
    static FourierGgsw fromGgsw(const GgswCiphertext &ggsw);

    /** Rebuild from raw transform-domain rows (deserialization). */
    static FourierGgsw
    fromRows(unsigned base_bits, unsigned levels,
             std::vector<std::vector<FourierPolynomial>> rows);

    unsigned numRows() const
    {
        return static_cast<unsigned>(rows_.size());
    }
    unsigned numCols() const
    {
        return rows_.empty()
                   ? 0
                   : static_cast<unsigned>(rows_[0].size());
    }
    const FourierPolynomial &at(unsigned row, unsigned col) const
    {
        return rows_[row][col];
    }

    unsigned baseBits() const { return baseBits_; }
    unsigned levels() const { return levels_; }

  private:
    // rows_[r][c]: row r (decomposition digit index), column c (output
    // GLWE component) -- the matrix of equation (2).
    std::vector<std::vector<FourierPolynomial>> rows_;
    unsigned baseBits_ = 0;
    unsigned levels_ = 0;
};

/**
 * Reference external product, coefficient domain, O(N^2) polynomial
 * products. result = ggsw [.] input. Ground truth for tests.
 */
GlweCiphertext externalProductSchoolbook(const GgswCiphertext &ggsw,
                                         const GlweCiphertext &input);

/**
 * Production external product through the Fourier domain:
 * decompose -> forward FFT per digit polynomial -> pointwise
 * multiply-accumulate per output component -> one inverse FFT per
 * component. Transform counts match the Input+Output-Reuse dataflow:
 * (k+1)*l_b forward + (k+1) inverse transforms.
 */
GlweCiphertext externalProductFourier(const FourierGgsw &ggsw,
                                      const GlweCiphertext &input);

/**
 * Workspace external product: result = ggsw [.] input, with every
 * intermediate (digit polynomials, Fourier transforms, accumulator)
 * taken from `ws`. Allocation-free once `ws` and `result` are warm.
 * `result` must not alias `input`.
 */
void externalProductFourier(const FourierGgsw &ggsw,
                            const GlweCiphertext &input,
                            GlweCiphertext &result,
                            BootstrapWorkspace &ws);

/**
 * CMux gate: returns input + ggsw [.] (rotated(input) - input) where
 * rotated = X^power * input. One blind-rotation iteration
 * (Algorithm 1, line 4).
 */
GlweCiphertext cmuxRotate(const FourierGgsw &ggsw,
                          const GlweCiphertext &input, unsigned power);

/**
 * In-place workspace CMux: acc += ggsw [.] (X^power * acc - acc).
 * The blind-rotation inner loop; allocation-free once `ws` is warm.
 */
void cmuxRotateInPlace(const FourierGgsw &ggsw, GlweCiphertext &acc,
                       unsigned power, BootstrapWorkspace &ws);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_GGSW_H
