/**
 * @file
 * LWE ciphertexts and keys (Section II-A).
 *
 * An LWE ciphertext of m in T_p under binary key s in {0,1}^n is
 * c = (a_1..a_n, b) with b = <a, s> + m + e. It is the scalar-message
 * workhorse of TFHE: application data enters and leaves bootstrapping as
 * LWE ciphertexts.
 */

#ifndef MORPHLING_TFHE_LWE_H
#define MORPHLING_TFHE_LWE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tfhe/params.h"
#include "tfhe/torus.h"

namespace morphling::tfhe {

/**
 * A binary LWE secret key.
 *
 * The dimension is explicit (not always params.lweDimension: the key
 * extracted from a GLWE ciphertext has dimension kN).
 */
class LweKey
{
  public:
    LweKey() = default;
    LweKey(const TfheParams &params, std::vector<std::int32_t> bits);

    /** Sample a uniform binary key of params.lweDimension bits. */
    static LweKey generate(const TfheParams &params, Rng &rng);

    const TfheParams &params() const { return *params_; }
    unsigned dimension() const
    {
        return static_cast<unsigned>(bits_.size());
    }
    const std::vector<std::int32_t> &bits() const { return bits_; }

  private:
    const TfheParams *params_ = nullptr;
    std::vector<std::int32_t> bits_; //!< each 0 or 1
};

/**
 * An LWE ciphertext: n mask words followed by the body.
 *
 * Layout matches the paper's (n+1)-tuple; data()[n] is b.
 */
class LweCiphertext
{
  public:
    LweCiphertext() = default;

    /** Zero ciphertext of the given dimension (a trivial encryption of
     *  0 with no noise). */
    explicit LweCiphertext(unsigned dimension);

    /** Trivial (noiseless, keyless) encryption of mu: a = 0, b = mu. */
    static LweCiphertext trivial(unsigned dimension, Torus32 mu);

    /** Encrypt mu under key with gaussian noise of stddev. */
    static LweCiphertext encrypt(const LweKey &key, Torus32 mu,
                                 double stddev, Rng &rng);

    unsigned dimension() const
    {
        return static_cast<unsigned>(data_.size()) - 1;
    }

    Torus32 mask(unsigned i) const { return data_[i]; }
    Torus32 &mask(unsigned i) { return data_[i]; }
    Torus32 body() const { return data_.back(); }
    Torus32 &body() { return data_.back(); }

    const std::vector<Torus32> &raw() const { return data_; }
    std::vector<Torus32> &raw() { return data_; }

    /** b - <a, s>: the noisy plaintext. */
    Torus32 phase(const LweKey &key) const;

    /** Homomorphic addition: this += other. */
    void addAssign(const LweCiphertext &other);

    /** Homomorphic subtraction: this -= other. */
    void subAssign(const LweCiphertext &other);

    /** Homomorphic negation. */
    void negate();

    /** Add a plaintext constant to the encrypted value. */
    void addPlain(Torus32 mu) { data_.back() += mu; }

    /** Multiply the encrypted value by a small signed integer. */
    void scaleAssign(std::int32_t factor);

  private:
    explicit LweCiphertext(std::vector<Torus32> data)
        : data_(std::move(data))
    {
    }

    std::vector<Torus32> data_; //!< a_1..a_n, b
};

/** Decrypt to the nearest message of a p-value plaintext space. */
std::uint32_t lweDecrypt(const LweKey &key, const LweCiphertext &ct,
                         std::uint32_t space);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_LWE_H
