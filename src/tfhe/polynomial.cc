#include "polynomial.h"

#include "common/logging.h"

namespace morphling::tfhe {

template <typename T>
void
Polynomial<T>::clear()
{
    std::fill(coeffs_.begin(), coeffs_.end(), T{0});
}

template <typename T>
void
Polynomial<T>::addAssign(const Polynomial &other)
{
    panic_if(degree() != other.degree(), "degree mismatch in addAssign");
    for (unsigned i = 0; i < degree(); ++i)
        coeffs_[i] = static_cast<T>(coeffs_[i] + other.coeffs_[i]);
}

template <typename T>
void
Polynomial<T>::subAssign(const Polynomial &other)
{
    panic_if(degree() != other.degree(), "degree mismatch in subAssign");
    for (unsigned i = 0; i < degree(); ++i)
        coeffs_[i] = static_cast<T>(coeffs_[i] - other.coeffs_[i]);
}

template <typename T>
void
Polynomial<T>::negate()
{
    for (auto &c : coeffs_)
        c = static_cast<T>(T{0} - c);
}

template <typename T>
Polynomial<T>
Polynomial<T>::mulByXPower(unsigned power) const
{
    const unsigned n = degree();
    panic_if(power >= 2 * n, "rotation power ", power,
             " out of range [0, 2N)");

    Polynomial out(n);
    // X^(a+N) = -X^a, so fold the power into [0, N) and remember the
    // sign flip.
    bool flip = false;
    unsigned a = power;
    if (a >= n) {
        a -= n;
        flip = true;
    }
    for (unsigned j = 0; j < n; ++j) {
        // Destination index of source coefficient j is j + a; wrapping
        // past N negates.
        const unsigned dst = j + a;
        T value = coeffs_[j];
        bool negate_coeff = flip;
        unsigned idx = dst;
        if (dst >= n) {
            idx = dst - n;
            negate_coeff = !negate_coeff;
        }
        out.coeffs_[idx] =
            negate_coeff ? static_cast<T>(T{0} - value) : value;
    }
    return out;
}

template <typename T>
Polynomial<T>
Polynomial<T>::rotateDiff(unsigned power) const
{
    Polynomial out = mulByXPower(power);
    out.subAssign(*this);
    return out;
}

template class Polynomial<Torus32>;
template class Polynomial<std::int32_t>;

void
negacyclicMulAddSchoolbook(TorusPolynomial &acc, const IntPolynomial &a,
                           const TorusPolynomial &b)
{
    const unsigned n = acc.degree();
    panic_if(a.degree() != n || b.degree() != n,
             "degree mismatch in negacyclic multiply");
    for (unsigned i = 0; i < n; ++i) {
        const auto ai = static_cast<std::int64_t>(a[i]);
        if (ai == 0)
            continue;
        for (unsigned j = 0; j < n; ++j) {
            const auto prod = static_cast<Torus32>(
                ai * static_cast<std::int64_t>(
                         static_cast<std::int32_t>(b[j])));
            const unsigned idx = i + j;
            if (idx < n)
                acc[idx] = acc[idx] + prod;
            else
                acc[idx - n] = acc[idx - n] - prod;
        }
    }
}

} // namespace morphling::tfhe
