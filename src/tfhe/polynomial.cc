#include "polynomial.h"

#include "common/logging.h"

namespace morphling::tfhe {

template <typename T>
void
Polynomial<T>::clear()
{
    std::fill(coeffs_.begin(), coeffs_.end(), T{0});
}

template <typename T>
void
Polynomial<T>::addAssign(const Polynomial &other)
{
    panic_if(degree() != other.degree(), "degree mismatch in addAssign");
    for (unsigned i = 0; i < degree(); ++i)
        coeffs_[i] = static_cast<T>(coeffs_[i] + other.coeffs_[i]);
}

template <typename T>
void
Polynomial<T>::subAssign(const Polynomial &other)
{
    panic_if(degree() != other.degree(), "degree mismatch in subAssign");
    for (unsigned i = 0; i < degree(); ++i)
        coeffs_[i] = static_cast<T>(coeffs_[i] - other.coeffs_[i]);
}

template <typename T>
void
Polynomial<T>::negate()
{
    for (auto &c : coeffs_)
        c = static_cast<T>(T{0} - c);
}

template <typename T>
void
Polynomial<T>::mulByXPowerInto(unsigned power, Polynomial &out) const
{
    const unsigned n = degree();
    panic_if(power >= 2 * n, "rotation power ", power,
             " out of range [0, 2N)");
    panic_if(out.degree() != n, "degree mismatch in rotation");

    // X^(a+N) = -X^a, so fold the power into [0, N) and remember the
    // sign flip. Source coefficient j lands at index j + a, negated
    // when it wraps past N; splitting the loop at the wrap point keeps
    // both halves branch-free.
    bool flip = false;
    unsigned a = power;
    if (a >= n) {
        a -= n;
        flip = true;
    }
    const T *__restrict src = coeffs_.data();
    T *__restrict dst = out.coeffs_.data();
    if (flip) {
        for (unsigned j = 0; j < n - a; ++j)
            dst[j + a] = static_cast<T>(T{0} - src[j]);
        for (unsigned j = n - a; j < n; ++j)
            dst[j + a - n] = src[j];
    } else {
        for (unsigned j = 0; j < n - a; ++j)
            dst[j + a] = src[j];
        for (unsigned j = n - a; j < n; ++j)
            dst[j + a - n] = static_cast<T>(T{0} - src[j]);
    }
}

template <typename T>
Polynomial<T>
Polynomial<T>::mulByXPower(unsigned power) const
{
    Polynomial out(degree());
    mulByXPowerInto(power, out);
    return out;
}

template <typename T>
void
Polynomial<T>::mulByXPowerInPlace(unsigned power, Polynomial &scratch)
{
    if (scratch.degree() != degree())
        scratch = Polynomial(degree());
    mulByXPowerInto(power, scratch);
    coeffs_.swap(scratch.coeffs_);
}

template <typename T>
Polynomial<T>
Polynomial<T>::rotateDiff(unsigned power) const
{
    Polynomial out(degree());
    rotateDiffInto(power, out);
    return out;
}

template <typename T>
void
Polynomial<T>::rotateDiffInto(unsigned power, Polynomial &out) const
{
    mulByXPowerInto(power, out);
    out.subAssign(*this);
}

template class Polynomial<Torus32>;
template class Polynomial<std::int32_t>;

void
negacyclicMulAddSchoolbook(TorusPolynomial &acc, const IntPolynomial &a,
                           const TorusPolynomial &b)
{
    const unsigned n = acc.degree();
    panic_if(a.degree() != n || b.degree() != n,
             "degree mismatch in negacyclic multiply");
    for (unsigned i = 0; i < n; ++i) {
        const auto ai = static_cast<std::int64_t>(a[i]);
        if (ai == 0)
            continue;
        for (unsigned j = 0; j < n; ++j) {
            const auto prod = static_cast<Torus32>(
                ai * static_cast<std::int64_t>(
                         static_cast<std::int32_t>(b[j])));
            const unsigned idx = i + j;
            if (idx < n)
                acc[idx] = acc[idx] + prod;
            else
                acc[idx - n] = acc[idx - n] - prod;
        }
    }
}

} // namespace morphling::tfhe
