/**
 * @file
 * Internal interface between the negacyclic FFT front end (fft.cc,
 * fft_dispatch.cc) and the ISA-specific batched butterfly kernels
 * (fft_kernels_{scalar,avx2,avx512,neon}.cc).
 *
 * The batched engine vectorizes across the *batch axis*: W polynomials
 * are transformed simultaneously with their coefficients interleaved
 * lane-wise (element j of lane w lives at scratch[j*W + w]). Every
 * butterfly position then maps to exactly one W-wide vector with the
 * twiddle broadcast across lanes, so all stages — including the
 * smallest spans and the radix-2 tail that defeat within-polynomial
 * vectorization — run at full vector width. Because each lane performs
 * exactly the scalar algorithm's operation sequence per element, the
 * batched output is bit-identical to the scalar path for every tier
 * (asserted in tests/test_workspace.cc).
 *
 * Each kernel translation unit is compiled with its own ISA flags plus
 * -ffp-contract=off (no FMA contraction: contraction would change
 * rounding and break bit-identity with the baseline scalar build).
 */

#ifndef MORPHLING_TFHE_FFT_KERNELS_H
#define MORPHLING_TFHE_FFT_KERNELS_H

#include <cmath>
#include <cstdint>

#include "tfhe/torus.h"

namespace morphling::tfhe::detail {

/** Widest lane count any kernel tier uses (AVX-512: 8 doubles). */
inline constexpr unsigned kMaxFftLanes = 8;

/**
 * Borrowed view of one NegacyclicFft engine's precomputed tables:
 * everything a kernel needs to run the transform, with no ownership.
 * Pointers remain valid for the lifetime of the owning engine.
 */
struct NegacyclicView
{
    unsigned n = 0;           //!< ring degree N
    unsigned half = 0;        //!< transform size N/2
    unsigned numStages = 0;   //!< radix-4 stage count
    bool radix2Tail = false;  //!< trailing radix-2 stage present
    const unsigned *stageLen = nullptr;    //!< span per stage (desc)
    const double *const *stageTw = nullptr; //!< 6-block twiddles/stage
    const double *twistRe = nullptr;        //!< e^{i*pi*j/N} real
    const double *twistIm = nullptr;        //!< e^{i*pi*j/N} imag
};

/**
 * One dispatch tier's kernel table. forwardW/inverseW transform exactly
 * `width` polynomials per call over the caller's interleaved scratch
 * (capacity >= width * half doubles per plane, 64-byte aligned).
 */
struct BatchKernels
{
    unsigned width = 1;             //!< lanes per batched call (W)
    const char *name = "scalar";    //!< tier name for logs/benches

    /**
     * Negacyclic forward of W integer polynomials: fold + twist fused
     * with the lane transpose, all butterfly stages on the interleaved
     * layout, then de-transpose into each polynomial's SoA spectrum
     * (out_re[w] / out_im[w], digit-reversed order).
     */
    void (*forwardW)(const NegacyclicView &t,
                     const std::int32_t *const *in,
                     double *const *out_re, double *const *out_im,
                     double *scratch_re, double *scratch_im) = nullptr;

    /**
     * Unscaled-inverse + untwist + scale + round of W spectra into W
     * torus polynomials. Consumes (clobbers) nothing of the inputs:
     * spectra are copied into the interleaved scratch first.
     */
    void (*inverseW)(const NegacyclicView &t,
                     const double *const *in_re,
                     const double *const *in_im,
                     Torus32 *const *out,
                     double *scratch_re, double *scratch_im) = nullptr;

    /** Pointwise complex multiply-accumulate over flat SoA arrays:
     *  p += a * b (the VPE inner loop). Any count. */
    void (*mulAdd)(unsigned count, const double *ar, const double *ai,
                   const double *br, const double *bi, double *pr,
                   double *pi) = nullptr;

    /** Pointwise complex accumulate: p += a. Any count. */
    void (*add)(unsigned count, const double *ar, const double *ai,
                double *pr, double *pi) = nullptr;
};

/**
 * Round a double onto the discretized 32-bit torus. Shared by the
 * scalar inverse path and every vector kernel's store stage so the
 * rounding behaviour (llrint + wrap-around cast, guarded exact range
 * reduction beyond 2^62) is one definition across tiers.
 */
inline Torus32
roundToTorus(double v)
{
    constexpr double kGuard = 4.611686018427387904e18; // 2^62
    if (v >= kGuard || v <= -kGuard)
        v = std::remainder(v, 4294967296.0);
    return static_cast<Torus32>(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llrint(v))));
}

/** Portable reference tier (W = 1); always available, and the bit-exact
 *  semantics every vector tier must reproduce. */
const BatchKernels &scalarBatchKernels();

// Vector tiers: each returns nullptr when the tier was not compiled in
// (wrong architecture or compiler lacks the ISA support).
const BatchKernels *avx2BatchKernels();
const BatchKernels *avx512BatchKernels();
const BatchKernels *neonBatchKernels();

} // namespace morphling::tfhe::detail

#endif // MORPHLING_TFHE_FFT_KERNELS_H
