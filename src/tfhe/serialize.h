/**
 * @file
 * Binary serialization of parameters, keys and ciphertexts.
 *
 * The deployment story of TFHE splits key material across machines: the
 * client keeps the secret keys, the server receives the evaluation keys
 * (BSK + KSK) and ciphertexts. This module provides a compact, versioned
 * little-endian format for all of them, with strict validation on load
 * (magic, version, and structural invariants; malformed input is a
 * fatal(), never undefined behaviour).
 *
 * Format: every object starts with a 4-byte tag naming its type, and
 * the stream starts with "MRPH" + format version.
 */

#ifndef MORPHLING_TFHE_SERIALIZE_H
#define MORPHLING_TFHE_SERIALIZE_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "tfhe/keyset.h"

namespace morphling::tfhe {

/** Current serialization format version. */
constexpr std::uint32_t kSerializeVersion = 1;

/**
 * The server-side key material: everything needed to evaluate
 * (bootstrap, key-switch) without the ability to decrypt.
 */
struct EvaluationKeys
{
    TfheParams params;
    BootstrapKey bsk;
    KeySwitchKey ksk;

    /** Extract the evaluation half of a full key set. */
    static EvaluationKeys fromKeySet(const KeySet &keys);
};

/** @{ Serialization entry points. Streams must be binary-mode. */
void saveParams(std::ostream &os, const TfheParams &params);
TfheParams loadParams(std::istream &is);

void saveCiphertext(std::ostream &os, const LweCiphertext &ct);
LweCiphertext loadCiphertext(std::istream &is);

void saveLweKey(std::ostream &os, const LweKey &key);
LweKey loadLweKey(std::istream &is, const TfheParams &params);

void saveEvaluationKeys(std::ostream &os, const EvaluationKeys &keys);
EvaluationKeys loadEvaluationKeys(std::istream &is);
/** @} */

/**
 * Decode evaluation keys without trusting the stream: returns nullopt
 * (with a diagnostic in *error when given) on a truncated stream, a
 * bad magic/version/tag, an implausible dimension or gadget, or
 * parameter sets violating their structural invariants — instead of
 * the fatal() the load* entry points reserve for local usage errors.
 * This is the surface a network server decodes key-enrollment frames
 * through (exec::RemoteServer).
 */
std::optional<EvaluationKeys>
tryLoadEvaluationKeys(std::istream &is, std::string *error = nullptr);

/**
 * Content-derived fingerprint of one tenant's evaluation-key material.
 *
 * Computed as FNV-1a over the canonical serialized stream
 * (saveEvaluationKeys), so two processes holding the same keys agree
 * on the fingerprint without exchanging the keys themselves, and any
 * mutation of the BSK/KSK/parameters changes it. This is an identity
 * for cache keying (service::TenantRegistry's LRU), not a
 * cryptographic commitment — do not use it to authenticate keys.
 */
using KeyFingerprint = std::uint64_t;

KeyFingerprint fingerprintEvaluationKeys(const EvaluationKeys &keys);

/** The fingerprint as 16 lowercase hex digits (metric/file names). */
std::string fingerprintHex(KeyFingerprint fp);

/** Serialized size of the evaluation keys in bytes — the per-tenant
 *  memory cost a key registry budgets against (BSK dominates). */
std::size_t evaluationKeysWireBytes(const EvaluationKeys &keys);

/**
 * Programmable bootstrap using only evaluation keys (the server-side
 * operation; mirrors programmableBootstrap(KeySet, ...)).
 */
LweCiphertext serverBootstrap(const EvaluationKeys &keys,
                              const LweCiphertext &ct,
                              const std::vector<Torus32> &lut);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_SERIALIZE_H
