#include "opcount.h"

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::tfhe {

std::uint64_t
fftMultsPerTransform(std::uint64_t points)
{
    panic_if(!isPowerOfTwo(points), "FFT size must be a power of two");
    // points/2 butterflies per stage, log2(points) stages, one complex
    // multiplication (4 real mults) per butterfly.
    return points / 2 * log2Floor(points) * 4;
}

std::uint64_t
transformsPerExternalProduct(const TfheParams &params, CostModel model)
{
    const std::uint64_t kp1 = params.glweDimension + 1;
    const std::uint64_t forward = kp1 * params.bskLevels;
    const std::uint64_t inverse = model == CostModel::CpuReference
                                      ? kp1 * kp1 * params.bskLevels
                                      : kp1;
    return forward + inverse;
}

OpBreakdown
externalProductOps(const TfheParams &params, CostModel model)
{
    const std::uint64_t n_poly = params.polyDegree;
    const std::uint64_t kp1 = params.glweDimension + 1;
    const std::uint64_t lb = params.bskLevels;

    OpBreakdown ops;

    std::uint64_t per_transform;
    std::uint64_t per_pointwise;
    if (model == CostModel::CpuReference) {
        // N-point complex FFT; pointwise products over N complex bins
        // (4 real mults per complex mult).
        per_transform = fftMultsPerTransform(n_poly);
        per_pointwise = n_poly * 4;
    } else {
        // Folded N/2-point FFT plus the twist stage (N/2 complex mults
        // = 2N real mults).
        per_transform = fftMultsPerTransform(n_poly / 2) + 2 * n_poly;
        per_pointwise = n_poly / 2 * 4;
    }

    ops.fftMults =
        transformsPerExternalProduct(params, model) * per_transform;
    ops.pointwiseMults = kp1 * kp1 * lb * per_pointwise;
    // Decomposition: one shift+mask+round chain per digit of every
    // coefficient of the (k+1) rotated-difference polynomials.
    ops.decompOps = kp1 * lb * n_poly;
    return ops;
}

OpBreakdown
bootstrapOps(const TfheParams &params, CostModel model)
{
    OpBreakdown ops = externalProductOps(params, model);
    const std::uint64_t n = params.lweDimension;
    ops.fftMults *= n;
    ops.pointwiseMults *= n;
    ops.decompOps *= n;

    ops.modSwitchOps = n + 1;
    ops.sampleExtractOps = 0;
    // Key switch: kN masks, l_k digits each, one scalar multiply of an
    // (n+1)-word LWE ciphertext per digit.
    ops.keySwitchMults = params.extractedLweDimension() *
                         params.kskLevels * (n + 1);
    return ops;
}

MemBreakdown
bootstrapMem(const TfheParams &params)
{
    MemBreakdown mem;
    mem.bskBytes = params.bskBytes();
    // CPU libraries keep the BSK as double-precision Fourier
    // coefficients: N/2 complex doubles (8B each part) per polynomial.
    mem.bskTransformBytes = std::uint64_t{params.lweDimension} *
                            params.polysPerGgsw() * params.polyDegree * 8;
    mem.kskBytes = params.kskBytes();
    mem.accBytes = params.accBytes();
    mem.lweBytes = (std::uint64_t{params.lweDimension} + 1) * 4;
    return mem;
}

std::uint64_t
polyMultsPerBootstrap(const TfheParams &params)
{
    const std::uint64_t kp1 = params.glweDimension + 1;
    return std::uint64_t{params.lweDimension} * kp1 * kp1 *
           params.bskLevels;
}

} // namespace morphling::tfhe
