/**
 * @file
 * Closed-form operation and memory accounting for TFHE bootstrapping
 * (the analysis behind Figure 1 and the Motivation section).
 *
 * Following the paper, an "operation" is one scalar multiplication.
 * Two transform cost models are provided:
 *  - CpuReference: what a CPU library (Concrete) executes — an N-point
 *    complex FFT per transform, and an inverse transform per polynomial
 *    product (no transform-domain accumulation across the gadget sum).
 *  - FoldedHardware: the folded N/2-point transform of Section V-A3
 *    with transform-domain accumulation, as Morphling executes it.
 */

#ifndef MORPHLING_TFHE_OPCOUNT_H
#define MORPHLING_TFHE_OPCOUNT_H

#include <cstdint>

#include "tfhe/params.h"

namespace morphling::tfhe {

/** Which implementation's transform behaviour to count. */
enum class CostModel
{
    CpuReference,   //!< N-point FFT, IFFT per product
    FoldedHardware, //!< N/2-point folded FFT, Fourier accumulation
};

/** Multiplication counts of one full bootstrap, split by task. */
struct OpBreakdown
{
    std::uint64_t fftMults = 0;       //!< inside I/FFT butterflies
    std::uint64_t pointwiseMults = 0; //!< transform-domain products
    std::uint64_t decompOps = 0;      //!< decomposition shifts/rounds
    std::uint64_t modSwitchOps = 0;
    std::uint64_t sampleExtractOps = 0; //!< always 0 (data movement)
    std::uint64_t keySwitchMults = 0;

    std::uint64_t blindRotationTotal() const
    {
        return fftMults + pointwiseMults + decompOps;
    }
    std::uint64_t total() const
    {
        return blindRotationTotal() + modSwitchOps + sampleExtractOps +
               keySwitchMults;
    }
    double fftFraction() const
    {
        return static_cast<double>(fftMults) /
               static_cast<double>(total());
    }
};

/** Working-set sizes of one bootstrap, split by structure. */
struct MemBreakdown
{
    std::uint64_t bskBytes = 0;          //!< coefficient-domain, 32-bit
    std::uint64_t bskTransformBytes = 0; //!< Fourier-domain, f64 (CPU)
    std::uint64_t kskBytes = 0;
    std::uint64_t accBytes = 0;
    std::uint64_t lweBytes = 0;
};

/** Scalar multiplications in one length-`points` complex FFT
 *  (radix-2: 4 real mults per butterfly, points/2*log2(points)
 *  butterflies). */
std::uint64_t fftMultsPerTransform(std::uint64_t points);

/** Number of domain transforms one external product performs. */
std::uint64_t transformsPerExternalProduct(const TfheParams &params,
                                           CostModel model);

/** Multiplication counts of one external product. */
OpBreakdown externalProductOps(const TfheParams &params, CostModel model);

/** Multiplication counts of one full bootstrap (n external products
 *  plus mod switch, sample extraction and key switching). */
OpBreakdown bootstrapOps(const TfheParams &params, CostModel model);

/** Working sets of one bootstrap. */
MemBreakdown bootstrapMem(const TfheParams &params);

/** Total polynomial multiplications in one bootstrap — the paper's
 *  ">10,000 polynomial multiplications" headline. */
std::uint64_t polyMultsPerBootstrap(const TfheParams &params);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_OPCOUNT_H
