#include "torus.h"

#include <cmath>

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::tfhe {

Torus32
doubleToTorus32(double value)
{
    const double frac = value - std::floor(value); // in [0, 1)
    // Scale and wrap; use int64 so that frac values very close to 1.0
    // rounding up to 2^32 wrap cleanly.
    const auto scaled =
        static_cast<std::int64_t>(std::llround(frac * 4294967296.0));
    return static_cast<Torus32>(scaled);
}

double
torus32ToDouble(Torus32 value)
{
    return static_cast<double>(static_cast<std::int32_t>(value)) *
           0x1.0p-32;
}

Torus32
encodeMessage(std::uint32_t message, std::uint32_t space)
{
    panic_if(space == 0, "plaintext space must be positive");
    // m/p on the torus. Computed as m * (2^32 / p) with 64-bit rounding
    // so non-power-of-two spaces encode correctly too.
    const auto numer =
        (static_cast<std::uint64_t>(message % space) << 32) + space / 2;
    return static_cast<Torus32>(numer / space);
}

std::uint32_t
decodeMessage(Torus32 value, std::uint32_t space)
{
    panic_if(space == 0, "plaintext space must be positive");
    // Nearest multiple of 1/p: round(value * p / 2^32) mod p.
    const auto scaled = static_cast<std::uint64_t>(value) * space;
    const auto rounded = (scaled + (std::uint64_t{1} << 31)) >> 32;
    return static_cast<std::uint32_t>(rounded % space);
}

Torus32
gaussianTorus32(Rng &rng, double stddev)
{
    const double noise = rng.nextGaussian() * stddev;
    return doubleToTorus32(noise);
}

std::uint32_t
modSwitchTorus32(Torus32 value, unsigned log2_two_n)
{
    panic_if(log2_two_n == 0 || log2_two_n > 32, "bad modulus 2N");
    if (log2_two_n == 32)
        return value;
    const unsigned shift = 32 - log2_two_n;
    const Torus32 offset = Torus32{1} << (shift - 1);
    // Wrapping add implements round-half-up across the torus seam.
    return (value + offset) >> shift;
}

double
torusDistance(Torus32 a, Torus32 b)
{
    const Torus32 diff = a - b;
    const double centered =
        static_cast<double>(static_cast<std::int32_t>(diff)) * 0x1.0p-32;
    return std::fabs(centered);
}

} // namespace morphling::tfhe
