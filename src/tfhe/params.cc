#include "params.h"

#include <sstream>

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::tfhe {

std::uint64_t
TfheParams::glweWords() const
{
    return std::uint64_t{polyDegree} * (glweDimension + 1);
}

std::uint64_t
TfheParams::extractedLweDimension() const
{
    return std::uint64_t{polyDegree} * glweDimension;
}

std::uint64_t
TfheParams::polysPerGgsw() const
{
    const std::uint64_t kp1 = glweDimension + 1;
    return kp1 * bskLevels * kp1;
}

std::uint64_t
TfheParams::bskBytes() const
{
    return std::uint64_t{lweDimension} * polysPerGgsw() * polyDegree * 4;
}

std::uint64_t
TfheParams::bskTransformBytes() const
{
    // N/2 complex values, 4-byte real + 4-byte imaginary parts
    // (Section V-A: 512-bit transform-domain datapath of eight 64-bit
    // complex elements) -> 4 * N bytes per polynomial, same as the
    // coefficient form.
    return bskBytes();
}

std::uint64_t
TfheParams::kskBytes() const
{
    return extractedLweDimension() * kskLevels * (lweDimension + 1) * 4;
}

std::uint64_t
TfheParams::accBytes() const
{
    return glweWords() * 4;
}

unsigned
TfheParams::log2TwoN() const
{
    return log2Floor(polyDegree) + 1;
}

std::string
TfheParams::summary() const
{
    std::ostringstream oss;
    oss << "set " << name << ": N=" << polyDegree << " n=" << lweDimension
        << " k=" << glweDimension << " l_b=" << bskLevels << " (base 2^"
        << bskBaseBits << ") l_k=" << kskLevels << " (base 2^"
        << kskBaseBits << ") lambda=" << securityBits;
    return oss.str();
}

const char *
TfheParams::firstProblem() const
{
    if (!isPowerOfTwo(polyDegree))
        return "N must be a power of two";
    if (polyDegree < 16)
        return "N too small";
    if (lweDimension == 0)
        return "n must be positive";
    if (glweDimension == 0)
        return "k must be positive";
    if (bskLevels == 0 || bskBaseBits == 0)
        return "bad BSK gadget";
    if (bskLevels * bskBaseBits > 32)
        return "BSK gadget exceeds 32-bit torus";
    if (kskLevels == 0 || kskBaseBits == 0)
        return "bad KSK gadget";
    if (kskLevels * kskBaseBits > 32)
        return "KSK gadget exceeds 32-bit torus";
    if (lweNoiseStd <= 0.0 || glweNoiseStd <= 0.0)
        return "noise stddevs must be positive";
    return nullptr;
}

void
TfheParams::validate() const
{
    fatal_if(firstProblem() != nullptr, firstProblem());
}

namespace {

TfheParams
make(const std::string &name, unsigned N, unsigned n, unsigned k,
     unsigned lb, unsigned bg_bits, unsigned lk, unsigned ks_base_bits,
     double lwe_std, double glwe_std, unsigned lambda)
{
    TfheParams p;
    p.name = name;
    p.polyDegree = N;
    p.lweDimension = n;
    p.glweDimension = k;
    p.bskLevels = lb;
    p.bskBaseBits = bg_bits;
    p.kskLevels = lk;
    p.kskBaseBits = ks_base_bits;
    p.lweNoiseStd = lwe_std;
    p.glweNoiseStd = glwe_std;
    p.securityBits = lambda;
    p.validate();
    return p;
}

} // namespace

// Decomposition bases follow the reference TFHE implementations for the
// matching dimensional parameters; sets B and C (k > 1) use bases scaled
// down so the double-precision FFT stays inside the noise budget. The
// single-level sets IV and A use beta = 2^16 rather than Concrete's
// 2^23: those published bases assume a 64-bit torus, and on the 32-bit
// torus this library (and the paper's hardware datapath) uses, a 2^23
// base amplifies the BSK noise past the decryption margin (the noise
// model in tfhe/noise.h quantifies this; test_noise.cc enforces it).
//
// Key switching uses few levels with a large base (the choice of the
// TFHE ASIC papers): the VPU's 128 MAC/cycle must key-switch one
// ciphertext in less time than the XPUs need to blind-rotate it, which
// bounds l_k * kN * (n+1) by the blind-rotation cycle count. The
// F128 set keeps Concrete's CPU-style l_k = 9 because Figure 1 is a CPU
// breakdown. Noise stddevs are functional placeholders tuned so every
// bootstrap round-trips with a wide margin; we do not re-derive
// security estimates (the lambda column is carried from the paper).

const TfheParams &
paramsSetI()
{
    static const TfheParams p = make("I", 1024, 500, 1, 2, 10, 2, 8,
                                     1.0e-6, 9.0e-10, 80);
    return p;
}

const TfheParams &
paramsSetII()
{
    static const TfheParams p = make("II", 1024, 630, 1, 3, 7, 2, 8,
                                     1.0e-6, 9.0e-10, 110);
    return p;
}

const TfheParams &
paramsSetIII()
{
    static const TfheParams p = make("III", 2048, 592, 1, 3, 8, 2, 8,
                                     1.0e-6, 5.0e-10, 128);
    return p;
}

const TfheParams &
paramsSetIV()
{
    static const TfheParams p = make("IV", 2048, 742, 1, 1, 16, 1, 12,
                                     1.0e-8, 2.0e-10, 128);
    return p;
}

const TfheParams &
paramsSetA()
{
    static const TfheParams p = make("A", 4096, 769, 1, 1, 16, 1, 12,
                                     1.0e-8, 1.2e-10, 128);
    return p;
}

const TfheParams &
paramsSetB()
{
    static const TfheParams p = make("B", 1024, 497, 2, 2, 8, 1, 12,
                                     1.0e-8, 9.0e-10, 128);
    return p;
}

const TfheParams &
paramsSetC()
{
    static const TfheParams p = make("C", 512, 487, 3, 3, 6, 2, 8,
                                     1.0e-6, 9.0e-10, 128);
    return p;
}

const TfheParams &
paramsFig1()
{
    static const TfheParams p = make("F128", 1024, 481, 2, 4, 6, 9, 3,
                                     1.0e-5, 9.0e-10, 128);
    return p;
}

const TfheParams &
paramsTest()
{
    // Small and fast; noise chosen so unit tests are deterministic-safe.
    static const TfheParams p = make("TEST", 512, 64, 1, 3, 7, 6, 2,
                                     1.0e-6, 1.0e-9, 0);
    return p;
}

const std::vector<TfheParams> &
allParamSets()
{
    static const std::vector<TfheParams> sets = {
        paramsSetI(), paramsSetII(), paramsSetIII(), paramsSetIV(),
        paramsSetA(), paramsSetB(), paramsSetC(), paramsFig1(),
    };
    return sets;
}

const TfheParams &
paramsByName(const std::string &name)
{
    for (const auto &p : allParamSets()) {
        if (p.name == name)
            return p;
    }
    if (name == "TEST")
        return paramsTest();
    fatal("unknown TFHE parameter set '", name, "'");
}

} // namespace morphling::tfhe
