/**
 * @file
 * Scalar (W = 1) instantiation of the batched negacyclic FFT kernels:
 * the portable fallback tier and the reference semantics every vector
 * tier must reproduce bit for bit. Compiled with -ffp-contract=off on
 * every platform so the arithmetic matches the vector TUs even on ISAs
 * where the compiler would otherwise contract mul+add into FMA.
 */

#include "tfhe/fft_kernels.h"
#include "tfhe/fft_kernels_impl.h"

namespace morphling::tfhe::detail {
namespace {

struct ScalarTraits
{
    static constexpr unsigned kWidth = 1;
    using Vec = double;

    static Vec load(const double *p) { return *p; }
    static void store(double *p, Vec v) { *p = v; }
    static Vec splat(double x) { return x; }
    static Vec add(Vec a, Vec b) { return a + b; }
    static Vec sub(Vec a, Vec b) { return a - b; }
    static Vec mul(Vec a, Vec b) { return a * b; }
    static Vec cvtInt32(const std::int32_t *p)
    {
        return static_cast<double>(*p);
    }
    static void transpose(Vec *) {} // 1x1 tile
};

} // namespace

const BatchKernels &
scalarBatchKernels()
{
    static const BatchKernels k = makeBatchKernels<ScalarTraits>("scalar");
    return k;
}

} // namespace morphling::tfhe::detail
