#include "batch.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "tfhe/encoding.h"

namespace morphling::tfhe {

std::vector<LweCiphertext>
batchBootstrap(const KeySet &keys,
               const std::vector<LweCiphertext> &inputs,
               const std::vector<Torus32> &lut)
{
    std::vector<LweCiphertext> out;
    out.reserve(inputs.size());
    for (const auto &ct : inputs)
        out.push_back(programmableBootstrap(keys, ct, lut));
    return out;
}

std::vector<LweCiphertext>
parallelBatchBootstrap(const KeySet &keys,
                       const std::vector<LweCiphertext> &inputs,
                       const std::vector<Torus32> &lut, unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, std::max<std::size_t>(1, inputs.size()));

    std::vector<LweCiphertext> out(inputs.size());
    if (threads == 1 || inputs.size() <= 1)
        return batchBootstrap(keys, inputs, lut);

    // Work stealing over an atomic index: bootstraps are uniform in
    // cost, so a simple counter balances well.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= inputs.size())
                return;
            out[i] = programmableBootstrap(keys, inputs[i], lut);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return out;
}

ParallelEfficiency
measureParallelEfficiency(const KeySet &keys, unsigned count,
                          unsigned threads)
{
    fatal_if(count == 0 || threads == 0,
             "efficiency probe needs work and workers");
    Rng rng(0xEFF1C1);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    std::vector<LweCiphertext> inputs;
    inputs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        inputs.push_back(encryptPadded(
            keys, static_cast<std::uint32_t>(i % 4), 4, rng));
    }

    ParallelEfficiency result;
    result.threads = threads;

    auto t0 = std::chrono::steady_clock::now();
    auto seq = batchBootstrap(keys, inputs, lut);
    auto t1 = std::chrono::steady_clock::now();
    auto par = parallelBatchBootstrap(keys, inputs, lut, threads);
    auto t2 = std::chrono::steady_clock::now();

    panic_if(seq.size() != par.size(), "batch size mismatch");
    result.sequentialSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.parallelSeconds =
        std::chrono::duration<double>(t2 - t1).count();
    return result;
}

} // namespace morphling::tfhe
