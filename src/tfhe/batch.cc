#include "batch.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "tfhe/encoding.h"
#include "tfhe/noise.h"

namespace morphling::tfhe {

namespace {

/** One bootstrap from evaluation material only (mirrors
 *  serverBootstrap; the KeySet path delegates here too). Runs through
 *  the calling thread's workspace, so each pool worker reuses its own
 *  scratch across the whole batch. */
void
bootstrapOne(const BootstrapKey &bsk, const KeySwitchKey &ksk,
             const TorusPolynomial &test_poly, const LweCiphertext &ct,
             LweCiphertext &out)
{
    bootstrapInto(bsk, ksk, test_poly, ct, out,
                  BootstrapWorkspace::forThisThread());
}

std::vector<LweCiphertext>
runBatch(const BootstrapKey &bsk, const KeySwitchKey &ksk,
         const TorusPolynomial &test_poly,
         const std::vector<LweCiphertext> &inputs,
         const BatchOptions &opts)
{
    unsigned threads = opts.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, std::max<std::size_t>(1, inputs.size()));

    std::vector<LweCiphertext> out(inputs.size());
    if (threads == 1 || inputs.size() <= 1) {
        for (std::size_t i = 0; i < inputs.size(); ++i)
            bootstrapOne(bsk, ksk, test_poly, inputs[i], out[i]);
        return out;
    }

    // Work stealing over an atomic index: bootstraps are uniform in
    // cost, so a simple counter balances well.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= inputs.size())
                return;
            bootstrapOne(bsk, ksk, test_poly, inputs[i], out[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return out;
}

} // namespace

void
auditBatchLut(const TfheParams &params, const std::vector<Torus32> &lut,
              const BatchOptions &opts)
{
    if (!opts.checkNoise || lut.empty())
        return;
    const NoiseModel model(params);
    // The input-side error that must stay inside half a LUT slot is the
    // fresh ciphertext noise plus the mod-switch rounding; a refreshed
    // input is the common case, so audit the refreshed level.
    const double input_variance =
        model.bootstrapOutputVariance() + model.modSwitchVariance();
    const double sigmas = model.slotSigmas(
        static_cast<std::uint32_t>(lut.size()), input_variance);
    if (sigmas < opts.minSlotSigmas) {
        warn("batch LUT over ", lut.size(), " messages has only ",
             sigmas, " sigmas of noise margin (want >= ",
             opts.minSlotSigmas, "); expect decode failures");
    }
}

std::vector<LweCiphertext>
batchBootstrap(const KeySet &keys,
               const std::vector<LweCiphertext> &inputs,
               const std::vector<Torus32> &lut, const BatchOptions &opts)
{
    auditBatchLut(keys.params, lut, opts);
    return runBatch(keys.bsk, keys.ksk,
                    buildTestPolynomial(keys.params.polyDegree, lut),
                    inputs, opts);
}

std::vector<LweCiphertext>
batchBootstrap(const EvaluationKeys &keys,
               const std::vector<LweCiphertext> &inputs,
               const std::vector<Torus32> &lut, const BatchOptions &opts)
{
    auditBatchLut(keys.params, lut, opts);
    return runBatch(keys.bsk, keys.ksk,
                    buildTestPolynomial(keys.params.polyDegree, lut),
                    inputs, opts);
}

std::vector<LweCiphertext>
batchSignBootstrap(const EvaluationKeys &keys,
                   const std::vector<LweCiphertext> &inputs, Torus32 mu,
                   const BatchOptions &opts)
{
    return runBatch(keys.bsk, keys.ksk,
                    constantTestPolynomial(keys.params.polyDegree, mu),
                    inputs, opts);
}

ParallelEfficiency
measureParallelEfficiency(const KeySet &keys, unsigned count,
                          unsigned threads)
{
    fatal_if(count == 0 || threads == 0,
             "efficiency probe needs work and workers");
    Rng rng(0xEFF1C1);
    const auto lut = makePaddedLut(4, [](std::uint32_t m) {
        return m;
    });
    std::vector<LweCiphertext> inputs;
    inputs.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        inputs.push_back(encryptPadded(
            keys, static_cast<std::uint32_t>(i % 4), 4, rng));
    }

    ParallelEfficiency result;
    result.threads = threads;

    BatchOptions parallel;
    parallel.threads = threads;

    auto t0 = std::chrono::steady_clock::now();
    auto seq = batchBootstrap(keys, inputs, lut);
    auto t1 = std::chrono::steady_clock::now();
    auto par = batchBootstrap(keys, inputs, lut, parallel);
    auto t2 = std::chrono::steady_clock::now();

    panic_if(seq.size() != par.size(), "batch size mismatch");
    result.sequentialSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.parallelSeconds =
        std::chrono::duration<double>(t2 - t1).count();
    return result;
}

} // namespace morphling::tfhe
