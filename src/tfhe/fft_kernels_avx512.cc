/**
 * @file
 * AVX-512 tier (W = 8 doubles) of the batched negacyclic FFT kernels.
 * Compiled with -mavx512f -ffp-contract=off on x86-64; degrades to a
 * nullptr factory elsewhere. Only AVX-512F instructions are used
 * (loads, arithmetic, unpack/shuffle_f64x2, cvtepi32_pd), so the tier
 * runs on every AVX-512 part from Skylake-SP on.
 *
 * No FMA intrinsics — see the bit-identity contract in
 * fft_kernels_impl.h.
 */

#include "tfhe/fft_kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "tfhe/fft_kernels_impl.h"

namespace morphling::tfhe::detail {
namespace {

struct Avx512Traits
{
    static constexpr unsigned kWidth = 8;
    using Vec = __m512d;

    static Vec load(const double *p) { return _mm512_loadu_pd(p); }
    static void store(double *p, Vec v) { _mm512_storeu_pd(p, v); }
    static Vec splat(double x) { return _mm512_set1_pd(x); }
    static Vec add(Vec a, Vec b) { return _mm512_add_pd(a, b); }
    static Vec sub(Vec a, Vec b) { return _mm512_sub_pd(a, b); }
    static Vec mul(Vec a, Vec b) { return _mm512_mul_pd(a, b); }
    static Vec cvtInt32(const std::int32_t *p)
    {
        return _mm512_cvtepi32_pd(
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p)));
    }

    /**
     * 8x8 in-register transpose in three stages: unpack adjacent rows
     * into 2-element column pairs, then two rounds of 128-bit chunk
     * shuffles (imm 0x88 picks chunks {0,2} of each source, 0xDD picks
     * {1,3}) that gather the pairs into full columns.
     */
    static void transpose(Vec *r)
    {
        const __m512d t0 = _mm512_unpacklo_pd(r[0], r[1]);
        const __m512d t1 = _mm512_unpackhi_pd(r[0], r[1]);
        const __m512d t2 = _mm512_unpacklo_pd(r[2], r[3]);
        const __m512d t3 = _mm512_unpackhi_pd(r[2], r[3]);
        const __m512d t4 = _mm512_unpacklo_pd(r[4], r[5]);
        const __m512d t5 = _mm512_unpackhi_pd(r[4], r[5]);
        const __m512d t6 = _mm512_unpacklo_pd(r[6], r[7]);
        const __m512d t7 = _mm512_unpackhi_pd(r[6], r[7]);

        const __m512d u0 = _mm512_shuffle_f64x2(t0, t2, 0x88);
        const __m512d u1 = _mm512_shuffle_f64x2(t1, t3, 0x88);
        const __m512d u2 = _mm512_shuffle_f64x2(t0, t2, 0xDD);
        const __m512d u3 = _mm512_shuffle_f64x2(t1, t3, 0xDD);
        const __m512d u4 = _mm512_shuffle_f64x2(t4, t6, 0x88);
        const __m512d u5 = _mm512_shuffle_f64x2(t5, t7, 0x88);
        const __m512d u6 = _mm512_shuffle_f64x2(t4, t6, 0xDD);
        const __m512d u7 = _mm512_shuffle_f64x2(t5, t7, 0xDD);

        r[0] = _mm512_shuffle_f64x2(u0, u4, 0x88);
        r[1] = _mm512_shuffle_f64x2(u1, u5, 0x88);
        r[2] = _mm512_shuffle_f64x2(u2, u6, 0x88);
        r[3] = _mm512_shuffle_f64x2(u3, u7, 0x88);
        r[4] = _mm512_shuffle_f64x2(u0, u4, 0xDD);
        r[5] = _mm512_shuffle_f64x2(u1, u5, 0xDD);
        r[6] = _mm512_shuffle_f64x2(u2, u6, 0xDD);
        r[7] = _mm512_shuffle_f64x2(u3, u7, 0xDD);
    }
};

} // namespace

const BatchKernels *
avx512BatchKernels()
{
    static const BatchKernels k = makeBatchKernels<Avx512Traits>("avx512");
    return &k;
}

} // namespace morphling::tfhe::detail

#else // !__AVX512F__

namespace morphling::tfhe::detail {

const BatchKernels *
avx512BatchKernels()
{
    return nullptr;
}

} // namespace morphling::tfhe::detail

#endif
