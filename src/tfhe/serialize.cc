#include "serialize.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>

#include "common/logging.h"
#include "tfhe/bootstrap.h"

namespace morphling::tfhe {

namespace {

constexpr char kMagic[4] = {'M', 'R', 'P', 'H'};

/**
 * Internal exception for tryLoadEvaluationKeys: the read-side checks
 * below throw it instead of fatal()ing while a TryParseScope is
 * active, so decoding an untrusted blob (a remote enrollment frame)
 * reports failure instead of terminating the server.
 */
struct ParseError
{
    std::string message;
};

thread_local bool tl_tryParse = false;

struct TryParseScope
{
    TryParseScope() { tl_tryParse = true; }
    ~TryParseScope() { tl_tryParse = false; }
};

/** Read-side validation: fatal() by default (the documented contract
 *  of the load* entry points), ParseError under tryLoad*. */
void
parseCheck(bool ok, const std::string &message)
{
    if (ok)
        return;
    if (tl_tryParse)
        throw ParseError{message};
    fatal(message);
}

void
writeBytes(std::ostream &os, const void *data, std::size_t size)
{
    os.write(static_cast<const char *>(data),
             static_cast<std::streamsize>(size));
    fatal_if(!os, "serialization write failed");
}

void
readBytes(std::istream &is, void *data, std::size_t size)
{
    is.read(static_cast<char *>(data),
            static_cast<std::streamsize>(size));
    parseCheck(is && is.gcount() == static_cast<std::streamsize>(size),
               "truncated or unreadable serialized stream");
}

void
writeU32(std::ostream &os, std::uint32_t v)
{
    writeBytes(os, &v, sizeof(v));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    readBytes(is, &v, sizeof(v));
    return v;
}

void
writeU64(std::ostream &os, std::uint64_t v)
{
    writeBytes(os, &v, sizeof(v));
}

std::uint64_t
readU64(std::istream &is)
{
    std::uint64_t v = 0;
    readBytes(is, &v, sizeof(v));
    return v;
}

void
writeDouble(std::ostream &os, double v)
{
    writeBytes(os, &v, sizeof(v));
}

double
readDouble(std::istream &is)
{
    double v = 0;
    readBytes(is, &v, sizeof(v));
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writeU32(os, static_cast<std::uint32_t>(s.size()));
    writeBytes(os, s.data(), s.size());
}

std::string
readString(std::istream &is)
{
    const std::uint32_t size = readU32(is);
    parseCheck(size <= 4096, "implausible string length in stream");
    std::string s(size, '\0');
    readBytes(is, s.data(), size);
    return s;
}

void
writeHeader(std::ostream &os, std::uint32_t type_tag)
{
    writeBytes(os, kMagic, sizeof(kMagic));
    writeU32(os, kSerializeVersion);
    writeU32(os, type_tag);
}

void
readHeader(std::istream &is, std::uint32_t expected_tag)
{
    char magic[4];
    readBytes(is, magic, sizeof(magic));
    parseCheck(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "bad magic: not a Morphling serialized stream");
    const std::uint32_t version = readU32(is);
    parseCheck(version == kSerializeVersion,
               morphling::detail::concat("unsupported serialization version ",
                              version));
    const std::uint32_t tag = readU32(is);
    parseCheck(tag == expected_tag,
               morphling::detail::concat("serialized object has type tag ", tag,
                              ", expected ", expected_tag));
}

// Type tags.
constexpr std::uint32_t kTagParams = 1;
constexpr std::uint32_t kTagCiphertext = 2;
constexpr std::uint32_t kTagLweKey = 3;
constexpr std::uint32_t kTagEvalKeys = 4;

void
writeFourierPoly(std::ostream &os, const FourierPolynomial &fp)
{
    writeU32(os, fp.ringDegree());
    for (unsigned i = 0; i < fp.size(); ++i) {
        writeDouble(os, fp.re(i));
        writeDouble(os, fp.im(i));
    }
}

FourierPolynomial
readFourierPoly(std::istream &is)
{
    const std::uint32_t degree = readU32(is);
    parseCheck(degree >= 4 && degree <= (1u << 20),
               morphling::detail::concat("implausible ring degree ", degree));
    FourierPolynomial fp(degree);
    for (unsigned i = 0; i < fp.size(); ++i) {
        fp.re(i) = readDouble(is);
        fp.im(i) = readDouble(is);
    }
    return fp;
}

void
writeLwe(std::ostream &os, const LweCiphertext &ct)
{
    writeU32(os, ct.dimension());
    writeBytes(os, ct.raw().data(), ct.raw().size() * sizeof(Torus32));
}

LweCiphertext
readLwe(std::istream &is)
{
    const std::uint32_t dim = readU32(is);
    parseCheck(dim != 0 && dim <= (1u << 24),
               morphling::detail::concat("implausible LWE dimension ", dim));
    LweCiphertext ct(dim);
    readBytes(is, ct.raw().data(), ct.raw().size() * sizeof(Torus32));
    return ct;
}

} // namespace

namespace {

/**
 * A sink streambuf that folds every byte written into an FNV-1a hash
 * (and a byte count) instead of storing it, so fingerprinting never
 * materializes a second copy of multi-megabyte key material.
 */
class HashingStreambuf final : public std::streambuf
{
  public:
    std::uint64_t hash() const { return hash_; }
    std::size_t bytes() const { return bytes_; }

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (ch != traits_type::eof())
            mix(static_cast<unsigned char>(ch));
        return ch;
    }

    std::streamsize
    xsputn(const char *data, std::streamsize n) override
    {
        for (std::streamsize i = 0; i < n; ++i)
            mix(static_cast<unsigned char>(data[i]));
        return n;
    }

  private:
    void
    mix(unsigned char byte)
    {
        hash_ ^= byte;
        hash_ *= 0x100000001B3ull; // FNV-1a 64-bit prime
        ++bytes_;
    }

    std::uint64_t hash_ = 0xCBF29CE484222325ull; // FNV offset basis
    std::size_t bytes_ = 0;
};

} // namespace

KeyFingerprint
fingerprintEvaluationKeys(const EvaluationKeys &keys)
{
    HashingStreambuf sink;
    std::ostream os(&sink);
    saveEvaluationKeys(os, keys);
    return sink.hash();
}

std::string
fingerprintHex(KeyFingerprint fp)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[fp & 0xF];
        fp >>= 4;
    }
    return out;
}

std::size_t
evaluationKeysWireBytes(const EvaluationKeys &keys)
{
    HashingStreambuf sink;
    std::ostream os(&sink);
    saveEvaluationKeys(os, keys);
    return sink.bytes();
}

EvaluationKeys
EvaluationKeys::fromKeySet(const KeySet &keys)
{
    EvaluationKeys eval;
    eval.params = keys.params;
    eval.bsk = keys.bsk;
    eval.ksk = keys.ksk;
    return eval;
}

void
saveParams(std::ostream &os, const TfheParams &params)
{
    writeHeader(os, kTagParams);
    writeString(os, params.name);
    writeU32(os, params.polyDegree);
    writeU32(os, params.lweDimension);
    writeU32(os, params.glweDimension);
    writeU32(os, params.bskLevels);
    writeU32(os, params.bskBaseBits);
    writeU32(os, params.kskLevels);
    writeU32(os, params.kskBaseBits);
    writeDouble(os, params.lweNoiseStd);
    writeDouble(os, params.glweNoiseStd);
    writeU32(os, params.securityBits);
}

TfheParams
loadParams(std::istream &is)
{
    readHeader(is, kTagParams);
    TfheParams p;
    p.name = readString(is);
    p.polyDegree = readU32(is);
    p.lweDimension = readU32(is);
    p.glweDimension = readU32(is);
    p.bskLevels = readU32(is);
    p.bskBaseBits = readU32(is);
    p.kskLevels = readU32(is);
    p.kskBaseBits = readU32(is);
    p.lweNoiseStd = readDouble(is);
    p.glweNoiseStd = readDouble(is);
    p.securityBits = readU32(is);
    parseCheck(p.firstProblem() == nullptr,
               p.firstProblem() ? p.firstProblem() : "");
    return p;
}

void
saveCiphertext(std::ostream &os, const LweCiphertext &ct)
{
    writeHeader(os, kTagCiphertext);
    writeLwe(os, ct);
}

LweCiphertext
loadCiphertext(std::istream &is)
{
    readHeader(is, kTagCiphertext);
    return readLwe(is);
}

void
saveLweKey(std::ostream &os, const LweKey &key)
{
    writeHeader(os, kTagLweKey);
    writeU32(os, key.dimension());
    for (auto bit : key.bits())
        writeU32(os, static_cast<std::uint32_t>(bit));
}

LweKey
loadLweKey(std::istream &is, const TfheParams &params)
{
    readHeader(is, kTagLweKey);
    const std::uint32_t dim = readU32(is);
    fatal_if(dim == 0 || dim > (1u << 24), "implausible key dimension");
    std::vector<std::int32_t> bits(dim);
    for (auto &bit : bits) {
        bit = static_cast<std::int32_t>(readU32(is));
        fatal_if(bit != 0 && bit != 1, "non-binary key bit in stream");
    }
    return LweKey(params, std::move(bits));
}

void
saveEvaluationKeys(std::ostream &os, const EvaluationKeys &keys)
{
    writeHeader(os, kTagEvalKeys);
    saveParams(os, keys.params);

    // Bootstrapping key: n Fourier GGSWs.
    writeU32(os, keys.bsk.size());
    for (unsigned i = 0; i < keys.bsk.size(); ++i) {
        const auto &ggsw = keys.bsk.entry(i);
        writeU32(os, ggsw.baseBits());
        writeU32(os, ggsw.levels());
        writeU32(os, ggsw.numRows());
        writeU32(os, ggsw.numCols());
        for (unsigned r = 0; r < ggsw.numRows(); ++r) {
            for (unsigned c = 0; c < ggsw.numCols(); ++c)
                writeFourierPoly(os, ggsw.at(r, c));
        }
    }

    // Key-switching key: kN * l_k LWE ciphertexts.
    writeU32(os, keys.ksk.sourceDimension());
    writeU32(os, keys.params.lweDimension);
    writeU32(os, keys.ksk.levels());
    writeU32(os, keys.ksk.baseBits());
    for (unsigned i = 0; i < keys.ksk.sourceDimension(); ++i) {
        for (unsigned j = 0; j < keys.ksk.levels(); ++j)
            writeLwe(os, keys.ksk.at(i, j));
    }
}

EvaluationKeys
loadEvaluationKeys(std::istream &is)
{
    readHeader(is, kTagEvalKeys);
    EvaluationKeys keys;
    keys.params = loadParams(is);

    const std::uint32_t bsk_size = readU32(is);
    parseCheck(bsk_size == keys.params.lweDimension,
               "BSK entry count does not match n");
    std::vector<FourierGgsw> entries;
    entries.reserve(bsk_size);
    for (std::uint32_t i = 0; i < bsk_size; ++i) {
        const std::uint32_t base_bits = readU32(is);
        const std::uint32_t levels = readU32(is);
        const std::uint32_t rows = readU32(is);
        const std::uint32_t cols = readU32(is);
        parseCheck(rows == (keys.params.glweDimension + 1) * levels &&
                       cols == keys.params.glweDimension + 1,
                   "GGSW shape mismatch in stream");
        parseCheck(levels != 0 && levels <= 32 && base_bits != 0 &&
                       base_bits <= 32,
                   "implausible GGSW gadget in stream");
        std::vector<std::vector<FourierPolynomial>> data(rows);
        for (auto &row : data) {
            row.reserve(cols);
            for (std::uint32_t c = 0; c < cols; ++c)
                row.push_back(readFourierPoly(is));
        }
        entries.push_back(
            FourierGgsw::fromRows(base_bits, levels, std::move(data)));
    }
    keys.bsk = BootstrapKey::fromEntries(std::move(entries));

    const std::uint32_t source_dim = readU32(is);
    const std::uint32_t target_dim = readU32(is);
    const std::uint32_t levels = readU32(is);
    const std::uint32_t base_bits = readU32(is);
    parseCheck(source_dim == keys.params.extractedLweDimension(),
               "KSK source dimension mismatch");
    parseCheck(target_dim == keys.params.lweDimension,
               "KSK target dimension mismatch");
    parseCheck(levels != 0 && levels <= 32,
               "implausible KSK level count in stream");
    std::vector<LweCiphertext> ksk_entries;
    ksk_entries.reserve(std::size_t{source_dim} * levels);
    for (std::uint32_t i = 0; i < source_dim * levels; ++i)
        ksk_entries.push_back(readLwe(is));
    keys.ksk = KeySwitchKey::fromEntries(source_dim, target_dim, levels,
                                         base_bits,
                                         std::move(ksk_entries));
    return keys;
}

std::optional<EvaluationKeys>
tryLoadEvaluationKeys(std::istream &is, std::string *error)
{
    TryParseScope scope;
    try {
        return loadEvaluationKeys(is);
    } catch (const ParseError &e) {
        if (error)
            *error = e.message;
    } catch (const std::bad_alloc &) {
        // The per-field plausibility caps bound each allocation, but a
        // well-formed header can still promise more material than the
        // host has memory for.
        if (error)
            *error = "serialized keys exceed available memory";
    }
    return std::nullopt;
}

LweCiphertext
serverBootstrap(const EvaluationKeys &keys, const LweCiphertext &ct,
                const std::vector<Torus32> &lut)
{
    auto &ws = BootstrapWorkspace::forThisThread();
    buildTestPolynomialInto(keys.params.polyDegree, lut, ws.testPoly);
    LweCiphertext out;
    bootstrapInto(keys.bsk, keys.ksk, ws.testPoly, ct, out, ws);
    return out;
}

} // namespace morphling::tfhe
