/**
 * @file
 * GLWE ciphertexts and keys (Section II-A).
 *
 * A GLWE ciphertext of a message polynomial M(x) under key
 * S = (S_1..S_k) is C = (A_1..A_k, B) with B = sum A_i * S_i + M + E in
 * T_q[X]/(X^N + 1). The accumulator (ACC) of blind rotation and the
 * test polynomial (TP) are GLWE ciphertexts.
 */

#ifndef MORPHLING_TFHE_GLWE_H
#define MORPHLING_TFHE_GLWE_H

#include <vector>

#include "common/rng.h"
#include "tfhe/lwe.h"
#include "tfhe/params.h"
#include "tfhe/polynomial.h"

namespace morphling::tfhe {

/** A GLWE secret key: k binary ring polynomials. */
class GlweKey
{
  public:
    GlweKey() = default;
    GlweKey(const TfheParams &params, std::vector<IntPolynomial> polys);

    /** Sample a uniform binary key (k polynomials of N bits). */
    static GlweKey generate(const TfheParams &params, Rng &rng);

    const TfheParams &params() const { return *params_; }
    unsigned dimension() const
    {
        return static_cast<unsigned>(polys_.size());
    }
    const IntPolynomial &poly(unsigned i) const { return polys_[i]; }

    /**
     * Flatten to the extracted LWE key of dimension kN
     * (s'_{iN+j} = S_i[j]), the key under which sample extraction
     * produces ciphertexts (Algorithm 1, line 5).
     */
    LweKey extractLweKey() const;

  private:
    const TfheParams *params_ = nullptr;
    std::vector<IntPolynomial> polys_;
};

/** A GLWE ciphertext: k mask polynomials plus the body polynomial. */
class GlweCiphertext
{
  public:
    GlweCiphertext() = default;

    /** Zero ciphertext (trivial encryption of the zero polynomial). */
    GlweCiphertext(unsigned glwe_dimension, unsigned poly_degree);

    /** Trivial (noiseless) encryption of a plaintext polynomial. */
    static GlweCiphertext trivial(unsigned glwe_dimension,
                                  TorusPolynomial message);

    /** Encrypt a message polynomial with fresh gaussian noise. */
    static GlweCiphertext encrypt(const GlweKey &key,
                                  const TorusPolynomial &message,
                                  double stddev, Rng &rng);

    unsigned dimension() const
    {
        return static_cast<unsigned>(polys_.size()) - 1;
    }
    unsigned polyDegree() const { return polys_[0].degree(); }

    /** Component access: index 0..k-1 are masks, index k is the body. */
    TorusPolynomial &component(unsigned i) { return polys_[i]; }
    const TorusPolynomial &component(unsigned i) const
    {
        return polys_[i];
    }

    TorusPolynomial &body() { return polys_.back(); }
    const TorusPolynomial &body() const { return polys_.back(); }

    /** B - sum A_i S_i: the noisy plaintext polynomial. */
    TorusPolynomial phase(const GlweKey &key) const;

    void addAssign(const GlweCiphertext &other);
    void subAssign(const GlweCiphertext &other);

    /** Multiply every component by X^power (power in [0, 2N)); the
     *  homomorphic rotation used in blind rotation. */
    GlweCiphertext mulByXPower(unsigned power) const;

    /** In-place rotation of every component through one caller-provided
     *  scratch polynomial (allocation-free when warm). */
    void mulByXPowerInPlace(unsigned power, TorusPolynomial &scratch);

    /**
     * Extract the LWE ciphertext of the constant coefficient of the
     * message (Algorithm 1, line 5). Pure data re-grouping, no
     * arithmetic beyond negation.
     */
    LweCiphertext sampleExtract() const;

    /**
     * Extract the LWE ciphertext of coefficient `index` of the
     * message. The basis of multi-LUT bootstrapping: one blind
     * rotation, several extracted outputs at different coefficient
     * positions.
     */
    LweCiphertext sampleExtractAt(unsigned index) const;

    /** Extraction into an existing ciphertext; only resizes `out` when
     *  its dimension mismatches (allocation-free when warm). */
    void sampleExtractAtInto(unsigned index, LweCiphertext &out) const;

  private:
    std::vector<TorusPolynomial> polys_; //!< A_1..A_k, B
};

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_GLWE_H
