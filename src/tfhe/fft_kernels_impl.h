/**
 * @file
 * Generic implementation of the batched negacyclic FFT kernels,
 * templated over a vector-traits type and instantiated once per ISA
 * translation unit (scalar / AVX2 / AVX-512 / NEON).
 *
 * A traits type V supplies:
 *   - kWidth: lanes per vector (1, 2, 4, 8)
 *   - Vec:    the register type (double, float64x2_t, __m256d, __m512d)
 *   - load/store (unaligned-tolerant), splat, add, sub, mul
 *   - cvtInt32: widen kWidth int32 coefficients to doubles
 *   - transpose: in-place kWidth x kWidth tile transpose of Vec rows
 *
 * Data layout: W polynomials are processed per call with coefficients
 * lane-interleaved — element j of lane (polynomial) w lives at
 * scratch[j*W + w]. A butterfly at position j is then one W-wide vector
 * op with the twiddle splat across lanes, so every stage runs at full
 * width regardless of its span. The fold+twist (forward) and
 * untwist+scale+round (inverse) are fused into the lane transpose
 * passes at the array boundaries, preserving the scalar engine's
 * pass count.
 *
 * Bit-identity contract: each lane executes exactly the operation
 * sequence of the scalar path per element (multiplies and adds in the
 * same order, no FMA contraction, shared roundToTorus), so outputs are
 * bit-identical to NegacyclicFft's scalar transforms. Keep any change
 * here in lockstep with fft.cc and compile kernel TUs with
 * -ffp-contract=off.
 */

#ifndef MORPHLING_TFHE_FFT_KERNELS_IMPL_H
#define MORPHLING_TFHE_FFT_KERNELS_IMPL_H

#include "tfhe/fft_kernels.h"

namespace morphling::tfhe::detail {

/** Fold + twist W integer polynomials and transpose them into the
 *  lane-interleaved scratch: one fused pass over the inputs. */
template <class V>
void
foldTwistTransposeIn(const NegacyclicView &t,
                     const std::int32_t *const *in, double *s_re,
                     double *s_im)
{
    constexpr unsigned W = V::kWidth;
    using Vec = typename V::Vec;
    const unsigned half = t.half;
    for (unsigned j0 = 0; j0 < half; j0 += W) {
        const Vec tr = V::load(t.twistRe + j0);
        const Vec ti = V::load(t.twistIm + j0);
        Vec row_re[W], row_im[W];
        for (unsigned w = 0; w < W; ++w) {
            // x_j = (a_j + i * a_{j+N/2}) * e^{i*pi*j/N}, same
            // expression order as the scalar fold+twist.
            const Vec lo = V::cvtInt32(in[w] + j0);
            const Vec hi = V::cvtInt32(in[w] + j0 + half);
            row_re[w] = V::sub(V::mul(lo, tr), V::mul(hi, ti));
            row_im[w] = V::add(V::mul(lo, ti), V::mul(hi, tr));
        }
        V::transpose(row_re);
        V::transpose(row_im);
        for (unsigned e = 0; e < W; ++e) {
            V::store(s_re + (j0 + e) * W, row_re[e]);
            V::store(s_im + (j0 + e) * W, row_im[e]);
        }
    }
}

/** All forward DIF butterfly stages on the interleaved layout. */
template <class V>
void
forwardStages(const NegacyclicView &t, double *re, double *im)
{
    constexpr unsigned W = V::kWidth;
    using Vec = typename V::Vec;
    for (unsigned s = 0; s < t.numStages; ++s) {
        const unsigned len = t.stageLen[s];
        const unsigned q = len / 4;
        const double *tw = t.stageTw[s];
        const double *w1r = tw + 0 * q, *w1i = tw + 1 * q;
        const double *w2r = tw + 2 * q, *w2i = tw + 3 * q;
        const double *w3r = tw + 4 * q, *w3i = tw + 5 * q;
        for (unsigned base = 0; base < t.half; base += len) {
            for (unsigned j = 0; j < q; ++j) {
                double *p0r = re + (base + j) * W;
                double *p1r = p0r + q * W;
                double *p2r = p1r + q * W;
                double *p3r = p2r + q * W;
                double *p0i = im + (base + j) * W;
                double *p1i = p0i + q * W;
                double *p2i = p1i + q * W;
                double *p3i = p2i + q * W;
                const Vec r0 = V::load(p0r), i0 = V::load(p0i);
                const Vec r1 = V::load(p1r), i1 = V::load(p1i);
                const Vec r2 = V::load(p2r), i2 = V::load(p2i);
                const Vec r3 = V::load(p3r), i3 = V::load(p3i);
                const Vec t0r = V::add(r0, r2), t0i = V::add(i0, i2);
                const Vec t1r = V::sub(r0, r2), t1i = V::sub(i0, i2);
                const Vec t2r = V::add(r1, r3), t2i = V::add(i1, i3);
                const Vec t3r = V::sub(r1, r3), t3i = V::sub(i1, i3);
                V::store(p0r, V::add(t0r, t2r));
                V::store(p0i, V::add(t0i, t2i));
                // y1 = (t1 - i*t3) * w, y2 = (t0 - t2) * w^2,
                // y3 = (t1 + i*t3) * w^3 (forward kernel e^{-i...}).
                const Vec y1r = V::add(t1r, t3i);
                const Vec y1i = V::sub(t1i, t3r);
                const Vec v1r = V::splat(w1r[j]), v1i = V::splat(w1i[j]);
                V::store(p1r, V::sub(V::mul(y1r, v1r), V::mul(y1i, v1i)));
                V::store(p1i, V::add(V::mul(y1r, v1i), V::mul(y1i, v1r)));
                const Vec y2r = V::sub(t0r, t2r);
                const Vec y2i = V::sub(t0i, t2i);
                const Vec v2r = V::splat(w2r[j]), v2i = V::splat(w2i[j]);
                V::store(p2r, V::sub(V::mul(y2r, v2r), V::mul(y2i, v2i)));
                V::store(p2i, V::add(V::mul(y2r, v2i), V::mul(y2i, v2r)));
                const Vec y3r = V::sub(t1r, t3i);
                const Vec y3i = V::add(t1i, t3r);
                const Vec v3r = V::splat(w3r[j]), v3i = V::splat(w3i[j]);
                V::store(p3r, V::sub(V::mul(y3r, v3r), V::mul(y3i, v3i)));
                V::store(p3i, V::add(V::mul(y3r, v3i), V::mul(y3i, v3r)));
            }
        }
    }
    if (t.radix2Tail) {
        for (unsigned p = 0; p < t.half; p += 2) {
            double *ar = re + p * W, *br = ar + W;
            double *ai = im + p * W, *bi = ai + W;
            const Vec xr = V::load(ar), xi = V::load(ai);
            const Vec yr = V::load(br), yi = V::load(bi);
            V::store(ar, V::add(xr, yr));
            V::store(ai, V::add(xi, yi));
            V::store(br, V::sub(xr, yr));
            V::store(bi, V::sub(xi, yi));
        }
    }
}

/** All inverse DIT butterfly stages (radix-2 tail first, then radix-4
 *  stages from the smallest span down to stage 0) on the interleaved
 *  layout. The exact transpose of forwardStages. */
template <class V>
void
inverseStages(const NegacyclicView &t, double *re, double *im)
{
    constexpr unsigned W = V::kWidth;
    using Vec = typename V::Vec;
    if (t.radix2Tail) {
        for (unsigned p = 0; p < t.half; p += 2) {
            double *ar = re + p * W, *br = ar + W;
            double *ai = im + p * W, *bi = ai + W;
            const Vec xr = V::load(ar), xi = V::load(ai);
            const Vec yr = V::load(br), yi = V::load(bi);
            V::store(ar, V::add(xr, yr));
            V::store(ai, V::add(xi, yi));
            V::store(br, V::sub(xr, yr));
            V::store(bi, V::sub(xi, yi));
        }
    }
    for (unsigned s = t.numStages; s-- > 0;) {
        const unsigned len = t.stageLen[s];
        const unsigned q = len / 4;
        const double *tw = t.stageTw[s];
        const double *w1r = tw + 0 * q, *w1i = tw + 1 * q;
        const double *w2r = tw + 2 * q, *w2i = tw + 3 * q;
        const double *w3r = tw + 4 * q, *w3i = tw + 5 * q;
        for (unsigned base = 0; base < t.half; base += len) {
            for (unsigned j = 0; j < q; ++j) {
                double *p0r = re + (base + j) * W;
                double *p1r = p0r + q * W;
                double *p2r = p1r + q * W;
                double *p3r = p2r + q * W;
                double *p0i = im + (base + j) * W;
                double *p1i = p0i + q * W;
                double *p2i = p1i + q * W;
                double *p3i = p2i + q * W;
                const Vec r0 = V::load(p0r), i0 = V::load(p0i);
                const Vec r1 = V::load(p1r), i1 = V::load(p1i);
                const Vec r2 = V::load(p2r), i2 = V::load(p2i);
                const Vec r3 = V::load(p3r), i3 = V::load(p3i);
                // u_s = y_s * conj(w^s); then the conjugate butterfly.
                const Vec v1r = V::splat(w1r[j]), v1i = V::splat(w1i[j]);
                const Vec v2r = V::splat(w2r[j]), v2i = V::splat(w2i[j]);
                const Vec v3r = V::splat(w3r[j]), v3i = V::splat(w3i[j]);
                const Vec u1r = V::add(V::mul(r1, v1r), V::mul(i1, v1i));
                const Vec u1i = V::sub(V::mul(i1, v1r), V::mul(r1, v1i));
                const Vec u2r = V::add(V::mul(r2, v2r), V::mul(i2, v2i));
                const Vec u2i = V::sub(V::mul(i2, v2r), V::mul(r2, v2i));
                const Vec u3r = V::add(V::mul(r3, v3r), V::mul(i3, v3i));
                const Vec u3i = V::sub(V::mul(i3, v3r), V::mul(r3, v3i));
                const Vec t0r = V::add(r0, u2r), t0i = V::add(i0, u2i);
                const Vec t1r = V::sub(r0, u2r), t1i = V::sub(i0, u2i);
                const Vec t2r = V::add(u1r, u3r), t2i = V::add(u1i, u3i);
                const Vec t3r = V::sub(u1r, u3r), t3i = V::sub(u1i, u3i);
                V::store(p0r, V::add(t0r, t2r));
                V::store(p0i, V::add(t0i, t2i));
                V::store(p1r, V::sub(t1r, t3i));
                V::store(p1i, V::add(t1i, t3r));
                V::store(p2r, V::sub(t0r, t2r));
                V::store(p2i, V::sub(t0i, t2i));
                V::store(p3r, V::add(t1r, t3i));
                V::store(p3i, V::sub(t1i, t3r));
            }
        }
    }
}

/** De-interleave the forward spectra back into each polynomial's SoA
 *  arrays (digit-reversed order, matching the scalar engine). */
template <class V>
void
transposeOut(const NegacyclicView &t, const double *s_re,
             const double *s_im, double *const *out_re,
             double *const *out_im)
{
    constexpr unsigned W = V::kWidth;
    using Vec = typename V::Vec;
    for (unsigned j0 = 0; j0 < t.half; j0 += W) {
        Vec row_re[W], row_im[W];
        for (unsigned e = 0; e < W; ++e) {
            row_re[e] = V::load(s_re + (j0 + e) * W);
            row_im[e] = V::load(s_im + (j0 + e) * W);
        }
        V::transpose(row_re);
        V::transpose(row_im);
        for (unsigned w = 0; w < W; ++w) {
            V::store(out_re[w] + j0, row_re[w]);
            V::store(out_im[w] + j0, row_im[w]);
        }
    }
}

/** Interleave W spectra into the scratch ahead of the inverse stages. */
template <class V>
void
spectraTransposeIn(const NegacyclicView &t, const double *const *in_re,
                   const double *const *in_im, double *s_re, double *s_im)
{
    constexpr unsigned W = V::kWidth;
    using Vec = typename V::Vec;
    for (unsigned j0 = 0; j0 < t.half; j0 += W) {
        Vec row_re[W], row_im[W];
        for (unsigned w = 0; w < W; ++w) {
            row_re[w] = V::load(in_re[w] + j0);
            row_im[w] = V::load(in_im[w] + j0);
        }
        V::transpose(row_re);
        V::transpose(row_im);
        for (unsigned e = 0; e < W; ++e) {
            V::store(s_re + (j0 + e) * W, row_re[e]);
            V::store(s_im + (j0 + e) * W, row_im[e]);
        }
    }
}

/** Untwist + scale + round the inverse output into W torus polynomials,
 *  fused with the de-interleaving transpose. Rounding goes through the
 *  shared scalar roundToTorus so every tier wraps identically. */
template <class V>
void
untwistRoundOut(const NegacyclicView &t, const double *s_re,
                const double *s_im, Torus32 *const *out)
{
    constexpr unsigned W = V::kWidth;
    using Vec = typename V::Vec;
    const unsigned half = t.half;
    const Vec sc = V::splat(1.0 / static_cast<double>(half));
    for (unsigned j0 = 0; j0 < half; j0 += W) {
        Vec row_re[W], row_im[W];
        for (unsigned e = 0; e < W; ++e) {
            row_re[e] = V::load(s_re + (j0 + e) * W);
            row_im[e] = V::load(s_im + (j0 + e) * W);
        }
        V::transpose(row_re);
        V::transpose(row_im);
        const Vec tr = V::load(t.twistRe + j0);
        const Vec ti = V::load(t.twistIm + j0);
        for (unsigned w = 0; w < W; ++w) {
            const Vec zr = V::mul(row_re[w], sc);
            const Vec zi = V::mul(row_im[w], sc);
            alignas(64) double lo[W], hi[W];
            V::store(lo, V::add(V::mul(zr, tr), V::mul(zi, ti)));
            V::store(hi, V::sub(V::mul(zi, tr), V::mul(zr, ti)));
            for (unsigned e = 0; e < W; ++e) {
                out[w][j0 + e] = roundToTorus(lo[e]);
                out[w][j0 + e + half] = roundToTorus(hi[e]);
            }
        }
    }
}

template <class V>
void
forwardWImpl(const NegacyclicView &t, const std::int32_t *const *in,
             double *const *out_re, double *const *out_im,
             double *s_re, double *s_im)
{
    foldTwistTransposeIn<V>(t, in, s_re, s_im);
    forwardStages<V>(t, s_re, s_im);
    transposeOut<V>(t, s_re, s_im, out_re, out_im);
}

template <class V>
void
inverseWImpl(const NegacyclicView &t, const double *const *in_re,
             const double *const *in_im, Torus32 *const *out,
             double *s_re, double *s_im)
{
    spectraTransposeIn<V>(t, in_re, in_im, s_re, s_im);
    inverseStages<V>(t, s_re, s_im);
    untwistRoundOut<V>(t, s_re, s_im, out);
}

template <class V>
void
mulAddImpl(unsigned count, const double *ar, const double *ai,
           const double *br, const double *bi, double *pr, double *pi)
{
    constexpr unsigned W = V::kWidth;
    using Vec = typename V::Vec;
    unsigned i = 0;
    for (; i + W <= count; i += W) {
        const Vec va_r = V::load(ar + i), va_i = V::load(ai + i);
        const Vec vb_r = V::load(br + i), vb_i = V::load(bi + i);
        V::store(pr + i,
                 V::add(V::load(pr + i),
                        V::sub(V::mul(va_r, vb_r), V::mul(va_i, vb_i))));
        V::store(pi + i,
                 V::add(V::load(pi + i),
                        V::add(V::mul(va_r, vb_i), V::mul(va_i, vb_r))));
    }
    for (; i < count; ++i) {
        pr[i] += ar[i] * br[i] - ai[i] * bi[i];
        pi[i] += ar[i] * bi[i] + ai[i] * br[i];
    }
}

template <class V>
void
addImpl(unsigned count, const double *ar, const double *ai, double *pr,
        double *pi)
{
    constexpr unsigned W = V::kWidth;
    unsigned i = 0;
    for (; i + W <= count; i += W) {
        V::store(pr + i, V::add(V::load(pr + i), V::load(ar + i)));
        V::store(pi + i, V::add(V::load(pi + i), V::load(ai + i)));
    }
    for (; i < count; ++i) {
        pr[i] += ar[i];
        pi[i] += ai[i];
    }
}

/** Assemble one tier's kernel table from a traits type. */
template <class V>
BatchKernels
makeBatchKernels(const char *name)
{
    BatchKernels k;
    k.width = V::kWidth;
    k.name = name;
    k.forwardW = &forwardWImpl<V>;
    k.inverseW = &inverseWImpl<V>;
    k.mulAdd = &mulAddImpl<V>;
    k.add = &addImpl<V>;
    return k;
}

} // namespace morphling::tfhe::detail

#endif // MORPHLING_TFHE_FFT_KERNELS_IMPL_H
