#include "radix.h"

#include "common/logging.h"

namespace morphling::tfhe {

RadixCiphertext
RadixCiphertext::encrypt(const KeySet &keys, std::uint64_t value,
                         unsigned num_digits, std::uint32_t base,
                         Rng &rng)
{
    fatal_if(base < 2, "radix base must be >= 2");
    fatal_if(num_digits == 0, "need at least one digit");
    fatal_if(2ull * base * base > keys.params.polyDegree,
             "digit space ", 2ull * base * base,
             " does not fit N = ", keys.params.polyDegree);

    RadixCiphertext out;
    out.base_ = base;
    out.magnitude_ = base - 1;
    out.digits_.reserve(num_digits);
    std::uint64_t rest = value;
    for (unsigned d = 0; d < num_digits; ++d) {
        out.digits_.push_back(encryptPadded(
            keys, static_cast<std::uint32_t>(rest % base),
            out.messageSpace(), rng));
        rest /= base;
    }
    fatal_if(rest != 0, "value ", value, " does not fit ", num_digits,
             " base-", base, " digits");
    return out;
}

std::uint64_t
RadixCiphertext::decrypt(const KeySet &keys) const
{
    std::uint64_t value = 0;
    for (unsigned d = numDigits(); d-- > 0;) {
        value = value * base_ +
                decryptPadded(keys, digits_[d], messageSpace());
    }
    return value;
}

void
RadixCiphertext::addAssign(const RadixCiphertext &other)
{
    panic_if(base_ != other.base_ || numDigits() != other.numDigits(),
             "radix shape mismatch");
    // Reserve base-1 of headroom for the incoming carry during the
    // next propagation pass.
    panic_if(magnitude_ + other.magnitude_ > messageSpace() - base_,
             "digit overflow: propagate carries first");
    for (unsigned d = 0; d < numDigits(); ++d)
        digits_[d].addAssign(other.digits_[d]);
    magnitude_ += other.magnitude_;
}

void
RadixCiphertext::addPlain(std::uint64_t value)
{
    panic_if(magnitude_ + (base_ - 1) > messageSpace() - base_,
             "digit overflow: propagate carries first");
    std::uint64_t rest = value;
    for (unsigned d = 0; d < numDigits() && rest > 0; ++d) {
        digits_[d].addPlain(encodePadded(
            static_cast<std::uint32_t>(rest % base_), messageSpace()));
        rest /= base_;
    }
    magnitude_ += base_ - 1;
}

void
RadixCiphertext::scalarMulAssign(std::uint32_t scalar)
{
    panic_if(scalar == 0, "scalar must be positive");
    panic_if(static_cast<std::uint64_t>(magnitude_) * scalar >
                 messageSpace() - base_,
             "digit overflow: scalar too large, propagate first");
    for (auto &d : digits_)
        d.scaleAssign(static_cast<std::int32_t>(scalar));
    magnitude_ *= scalar;
}

unsigned
RadixCiphertext::propagateCarries(const KeySet &keys)
{
    const std::uint32_t space = messageSpace();
    const std::uint32_t base = base_;
    const auto low_lut = makePaddedLut(space, [base](std::uint32_t m) {
        return m % base;
    });
    const auto carry_lut = makePaddedLut(space, [base](std::uint32_t m) {
        return m / base;
    });

    unsigned bootstraps = 0;
    LweCiphertext carry;
    bool have_carry = false;
    for (unsigned d = 0; d < numDigits(); ++d) {
        LweCiphertext acc = digits_[d];
        if (have_carry)
            acc.addAssign(carry);
        // Low part keeps the digit; high part rides into the next
        // digit. The last digit wraps (modular big-integer semantics).
        digits_[d] = programmableBootstrap(keys, acc, low_lut);
        ++bootstraps;
        if (d + 1 < numDigits()) {
            carry = programmableBootstrap(keys, acc, carry_lut);
            have_carry = true;
            ++bootstraps;
        }
    }
    magnitude_ = base_ - 1;
    return bootstraps;
}

unsigned
RadixCiphertext::additionsBeforeOverflow() const
{
    // Each addition of a normalized operand adds up to base-1 to a
    // digit; base-1 of space stays reserved for the propagation carry.
    const std::uint32_t headroom = messageSpace() - base_ - magnitude_;
    return headroom / (base_ - 1);
}

} // namespace morphling::tfhe
