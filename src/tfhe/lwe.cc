#include "lwe.h"

#include "common/logging.h"

namespace morphling::tfhe {

LweKey::LweKey(const TfheParams &params, std::vector<std::int32_t> bits)
    : params_(&params), bits_(std::move(bits))
{
    for (auto b : bits_)
        panic_if(b != 0 && b != 1, "LWE key bits must be binary");
}

LweKey
LweKey::generate(const TfheParams &params, Rng &rng)
{
    std::vector<std::int32_t> bits(params.lweDimension);
    for (auto &b : bits)
        b = rng.nextBit() ? 1 : 0;
    return LweKey(params, std::move(bits));
}

LweCiphertext::LweCiphertext(unsigned dimension)
    : data_(dimension + 1, 0)
{
}

LweCiphertext
LweCiphertext::trivial(unsigned dimension, Torus32 mu)
{
    LweCiphertext ct(dimension);
    ct.body() = mu;
    return ct;
}

LweCiphertext
LweCiphertext::encrypt(const LweKey &key, Torus32 mu, double stddev,
                       Rng &rng)
{
    const unsigned n = key.dimension();
    LweCiphertext ct(n);
    Torus32 acc = mu + gaussianTorus32(rng, stddev);
    for (unsigned i = 0; i < n; ++i) {
        ct.mask(i) = rng.nextU32();
        if (key.bits()[i])
            acc += ct.mask(i);
    }
    ct.body() = acc;
    return ct;
}

Torus32
LweCiphertext::phase(const LweKey &key) const
{
    panic_if(key.dimension() != dimension(),
             "key dimension ", key.dimension(),
             " != ciphertext dimension ", dimension());
    Torus32 acc = body();
    for (unsigned i = 0; i < dimension(); ++i) {
        if (key.bits()[i])
            acc -= mask(i);
    }
    return acc;
}

void
LweCiphertext::addAssign(const LweCiphertext &other)
{
    panic_if(dimension() != other.dimension(),
             "dimension mismatch in LWE add");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
LweCiphertext::subAssign(const LweCiphertext &other)
{
    panic_if(dimension() != other.dimension(),
             "dimension mismatch in LWE sub");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
}

void
LweCiphertext::negate()
{
    for (auto &w : data_)
        w = 0 - w;
}

void
LweCiphertext::scaleAssign(std::int32_t factor)
{
    for (auto &w : data_)
        w = static_cast<Torus32>(
            static_cast<std::int64_t>(factor) *
            static_cast<std::int64_t>(static_cast<std::int32_t>(w)));
}

std::uint32_t
lweDecrypt(const LweKey &key, const LweCiphertext &ct, std::uint32_t space)
{
    return decodeMessage(ct.phase(key), space);
}

} // namespace morphling::tfhe
