/**
 * @file
 * Runtime dispatch for the batched negacyclic FFT kernels.
 *
 * The library ships one binary with scalar, AVX2, AVX-512 and NEON
 * butterfly kernels compiled side by side (each translation unit with
 * its own ISA flags); the widest tier the host CPU supports is selected
 * once, on first use, via CPUID (x86) / architecture baseline (ARM).
 * All tiers produce bit-identical outputs (tests force each tier and
 * assert exact equality), so dispatch is purely a throughput decision.
 *
 * The MORPHLING_FFT_DISPATCH environment variable overrides the
 * selection: auto (default), scalar, avx2, avx512 or neon. Requesting
 * an unsupported tier warns and falls back to auto. The resolved tier
 * is reported once through inform() and the telemetry gauge
 * tfhe.fft_dispatch_width, so benchmark JSON and service logs record
 * which kernel produced their numbers.
 */

#ifndef MORPHLING_TFHE_FFT_DISPATCH_H
#define MORPHLING_TFHE_FFT_DISPATCH_H

#include <vector>

namespace morphling::tfhe {

namespace detail {
struct BatchKernels;
}

/** The kernel tiers, narrowest to widest. */
enum class FftDispatchTier { kScalar, kAvx2, kAvx512, kNeon };

/** Tier name as used in logs, env values and bench labels. */
const char *fftDispatchTierName(FftDispatchTier tier);

/** True when the tier is compiled in and the host CPU supports it. */
bool fftDispatchTierSupported(FftDispatchTier tier);

/** All runnable tiers on this host, scalar first, widest last. */
std::vector<FftDispatchTier> supportedFftDispatchTiers();

/**
 * The tier every batched transform currently routes through. Resolved
 * once on first call (environment override, then widest supported) and
 * logged; later calls are a single atomic load.
 */
FftDispatchTier activeFftDispatchTier();

/**
 * Force a specific tier (testing/benchmark hook). The tier must be
 * supported on this host. Takes effect for subsequent batched calls;
 * do not call concurrently with running transforms.
 */
void forceFftDispatchTier(FftDispatchTier tier);

/** Drop any forced tier and re-resolve from the environment + CPU on
 *  next use. */
void resetFftDispatchTier();

namespace detail {

/** Kernel table of the active tier (resolving it on first use). */
const BatchKernels &activeBatchKernels();

/**
 * The active tier and every supported narrower tier, widths strictly
 * descending, always ending in the scalar table. The active tier is a
 * width *ceiling*, not the only kernel: a batch smaller than its lane
 * count descends the ladder to the widest kernel that still fills its
 * lanes (all tiers are bit-identical, so this is purely a throughput
 * decision). Forcing the scalar tier leaves only the scalar rung.
 */
struct KernelLadder
{
    const BatchKernels *rung[4] = {nullptr, nullptr, nullptr, nullptr};
    unsigned count = 0;
};

/** Ladder of the active tier (resolving it on first use). */
const KernelLadder &activeKernelLadder();

} // namespace detail

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_FFT_DISPATCH_H
