#include "fft_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "telemetry/metrics.h"
#include "tfhe/fft_kernels.h"

namespace morphling::tfhe {

namespace {

using detail::BatchKernels;

/** Kernel table for a tier, nullptr when not compiled in. */
const BatchKernels *
tierKernels(FftDispatchTier tier)
{
    switch (tier) {
    case FftDispatchTier::kScalar:
        return &detail::scalarBatchKernels();
    case FftDispatchTier::kAvx2:
        return detail::avx2BatchKernels();
    case FftDispatchTier::kAvx512:
        return detail::avx512BatchKernels();
    case FftDispatchTier::kNeon:
        return detail::neonBatchKernels();
    }
    return nullptr;
}

/** CPU capability probe (compile-time support checked separately). */
bool
cpuSupports(FftDispatchTier tier)
{
    switch (tier) {
    case FftDispatchTier::kScalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case FftDispatchTier::kAvx2:
        return __builtin_cpu_supports("avx2") != 0;
    case FftDispatchTier::kAvx512:
        return __builtin_cpu_supports("avx512f") != 0;
#endif
#if defined(__aarch64__)
    case FftDispatchTier::kNeon:
        return true; // double-precision NEON is baseline AArch64
#endif
    default:
        return false;
    }
}

/** Widest supported tier: auto-selection policy. */
FftDispatchTier
bestSupportedTier()
{
    for (FftDispatchTier t : {FftDispatchTier::kAvx512,
                              FftDispatchTier::kAvx2,
                              FftDispatchTier::kNeon})
        if (fftDispatchTierSupported(t))
            return t;
    return FftDispatchTier::kScalar;
}

/** Parse a MORPHLING_FFT_DISPATCH value; empty/auto/unknown -> auto
 *  (unknown additionally warns). */
FftDispatchTier
resolveFromEnv()
{
    const char *env = std::getenv("MORPHLING_FFT_DISPATCH");
    const std::string v = env ? env : "";
    if (v.empty() || v == "auto")
        return bestSupportedTier();

    FftDispatchTier requested;
    if (v == "scalar")
        requested = FftDispatchTier::kScalar;
    else if (v == "avx2")
        requested = FftDispatchTier::kAvx2;
    else if (v == "avx512")
        requested = FftDispatchTier::kAvx512;
    else if (v == "neon")
        requested = FftDispatchTier::kNeon;
    else {
        warn("MORPHLING_FFT_DISPATCH=", v,
             " not recognized (auto/scalar/avx2/avx512/neon); using auto");
        return bestSupportedTier();
    }
    if (!fftDispatchTierSupported(requested)) {
        warn("MORPHLING_FFT_DISPATCH=", v,
             " not supported on this host; using auto");
        return bestSupportedTier();
    }
    return requested;
}

// The active kernel table. nullptr until first resolution; writes only
// under g_mutex, reads are one relaxed atomic load on the hot path.
std::atomic<const BatchKernels *> g_active{nullptr};
std::atomic<const detail::KernelLadder *> g_ladder{nullptr};
std::mutex g_mutex;

/** Descending-width ladder for a tier: the tier itself, then every
 *  supported narrower tier, always ending at scalar. Built once per
 *  tier; the storage is immortal so published pointers stay valid. */
const detail::KernelLadder &
ladderFor(FftDispatchTier tier)
{
    static detail::KernelLadder ladders[4];
    static std::once_flag built;
    std::call_once(built, [] {
        for (FftDispatchTier t : {FftDispatchTier::kScalar,
                                  FftDispatchTier::kAvx2,
                                  FftDispatchTier::kAvx512,
                                  FftDispatchTier::kNeon}) {
            if (!fftDispatchTierSupported(t))
                continue;
            const BatchKernels *top = tierKernels(t);
            detail::KernelLadder &ladder =
                ladders[static_cast<unsigned>(t)];
            // Gather every supported table no wider than the ceiling,
            // then sort widest first by repeated max selection (at
            // most four rungs, so simplicity beats an std::sort).
            const BatchKernels *pool[4];
            unsigned n = 0;
            for (FftDispatchTier u : {FftDispatchTier::kScalar,
                                      FftDispatchTier::kAvx2,
                                      FftDispatchTier::kAvx512,
                                      FftDispatchTier::kNeon})
                if (fftDispatchTierSupported(u) &&
                    tierKernels(u)->width <= top->width)
                    pool[n++] = tierKernels(u);
            while (ladder.count < n) {
                unsigned best = 0;
                for (unsigned i = 1; i < n; ++i)
                    if (pool[i] && (!pool[best] ||
                                    pool[i]->width > pool[best]->width))
                        best = i;
                ladder.rung[ladder.count++] = pool[best];
                pool[best] = nullptr;
            }
        }
    });
    return ladders[static_cast<unsigned>(tier)];
}

/** Publish a tier: set the table, log once per change, update the
 *  telemetry gauge so exported metrics carry the kernel width. */
void
publish(FftDispatchTier tier, const char *how)
{
    const BatchKernels *k = tierKernels(tier);
    panic_if(!k, "publishing unsupported FFT dispatch tier");
    static const BatchKernels *last_logged = nullptr;
    g_ladder.store(&ladderFor(tier), std::memory_order_release);
    g_active.store(k, std::memory_order_release);
    telemetry::MetricsRegistry::instance()
        .gauge("tfhe.fft_dispatch_width",
               "SIMD lane width of the active negacyclic FFT kernels")
        .set(k->width);
    if (k != last_logged) { // re-selecting the same tier stays quiet
        last_logged = k;    // (bench loops force per repetition)
        inform("tfhe: negacyclic FFT dispatch -> ", k->name, " (",
               k->width, " lane", k->width == 1 ? "" : "s", ", ", how,
               ")");
    }
}

} // namespace

const char *
fftDispatchTierName(FftDispatchTier tier)
{
    switch (tier) {
    case FftDispatchTier::kScalar:
        return "scalar";
    case FftDispatchTier::kAvx2:
        return "avx2";
    case FftDispatchTier::kAvx512:
        return "avx512";
    case FftDispatchTier::kNeon:
        return "neon";
    }
    return "?";
}

bool
fftDispatchTierSupported(FftDispatchTier tier)
{
    return tierKernels(tier) != nullptr && cpuSupports(tier);
}

std::vector<FftDispatchTier>
supportedFftDispatchTiers()
{
    std::vector<FftDispatchTier> out{FftDispatchTier::kScalar};
    for (FftDispatchTier t : {FftDispatchTier::kNeon,
                              FftDispatchTier::kAvx2,
                              FftDispatchTier::kAvx512})
        if (fftDispatchTierSupported(t))
            out.push_back(t);
    return out;
}

FftDispatchTier
activeFftDispatchTier()
{
    const BatchKernels &k = detail::activeBatchKernels();
    if (&k == &detail::scalarBatchKernels())
        return FftDispatchTier::kScalar;
    if (&k == detail::avx2BatchKernels())
        return FftDispatchTier::kAvx2;
    if (&k == detail::avx512BatchKernels())
        return FftDispatchTier::kAvx512;
    return FftDispatchTier::kNeon;
}

void
forceFftDispatchTier(FftDispatchTier tier)
{
    panic_if(!fftDispatchTierSupported(tier),
             "cannot force unsupported FFT dispatch tier ",
             fftDispatchTierName(tier));
    std::lock_guard<std::mutex> lock(g_mutex);
    publish(tier, "forced");
}

void
resetFftDispatchTier()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    g_ladder.store(nullptr, std::memory_order_release);
    g_active.store(nullptr, std::memory_order_release);
}

namespace detail {

const BatchKernels &
activeBatchKernels()
{
    const BatchKernels *k = g_active.load(std::memory_order_acquire);
    if (k)
        return *k;
    std::lock_guard<std::mutex> lock(g_mutex);
    k = g_active.load(std::memory_order_acquire);
    if (!k) {
        publish(resolveFromEnv(), "first use");
        k = g_active.load(std::memory_order_acquire);
    }
    return *k;
}

const KernelLadder &
activeKernelLadder()
{
    const KernelLadder *l = g_ladder.load(std::memory_order_acquire);
    if (l)
        return *l;
    activeBatchKernels(); // resolves and publishes the ladder too
    return *g_ladder.load(std::memory_order_acquire);
}

} // namespace detail

} // namespace morphling::tfhe
