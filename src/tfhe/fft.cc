#include "fft.h"

#include <cmath>
#include <map>
#include <memory>

#include "common/bits.h"
#include "common/logging.h"

namespace morphling::tfhe {

ComplexFft::ComplexFft(unsigned size) : size_(size)
{
    panic_if(!isPowerOfTwo(size) || size < 2, "bad FFT size ", size);

    twiddleRe_.resize(size_ / 2);
    twiddleIm_.resize(size_ / 2);
    for (unsigned j = 0; j < size_ / 2; ++j) {
        const double angle = -2.0 * M_PI * static_cast<double>(j) /
                             static_cast<double>(size_);
        twiddleRe_[j] = std::cos(angle);
        twiddleIm_[j] = std::sin(angle);
    }

    bitrev_.resize(size_);
    const unsigned bits = log2Floor(size_);
    for (unsigned i = 0; i < size_; ++i) {
        unsigned r = 0;
        for (unsigned b = 0; b < bits; ++b) {
            if (i & (1u << b))
                r |= 1u << (bits - 1 - b);
        }
        bitrev_[i] = r;
    }
}

void
ComplexFft::run(double *re, double *im, int sign) const
{
    // Bit-reversal permutation.
    for (unsigned i = 0; i < size_; ++i) {
        const unsigned j = bitrev_[i];
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    // Iterative radix-2 decimation-in-time butterflies.
    for (unsigned len = 2; len <= size_; len <<= 1) {
        const unsigned stride = size_ / len;
        const unsigned half_len = len / 2;
        for (unsigned base = 0; base < size_; base += len) {
            for (unsigned t = 0; t < half_len; ++t) {
                const double wr = twiddleRe_[t * stride];
                const double wi = sign < 0 ? twiddleIm_[t * stride]
                                           : -twiddleIm_[t * stride];
                const unsigned lo = base + t;
                const unsigned hi = lo + half_len;
                const double xr = re[hi] * wr - im[hi] * wi;
                const double xi = re[hi] * wi + im[hi] * wr;
                re[hi] = re[lo] - xr;
                im[hi] = im[lo] - xi;
                re[lo] += xr;
                im[lo] += xi;
            }
        }
    }
}

void
ComplexFft::forward(double *re, double *im) const
{
    run(re, im, -1);
}

void
ComplexFft::inverse(double *re, double *im) const
{
    run(re, im, +1);
}

FourierPolynomial::FourierPolynomial(unsigned ring_degree)
    : ringDegree_(ring_degree), re_(ring_degree / 2, 0.0),
      im_(ring_degree / 2, 0.0)
{
    panic_if(!isPowerOfTwo(ring_degree) || ring_degree < 4,
             "bad ring degree ", ring_degree);
}

void
FourierPolynomial::clear()
{
    std::fill(re_.begin(), re_.end(), 0.0);
    std::fill(im_.begin(), im_.end(), 0.0);
}

void
FourierPolynomial::addAssign(const FourierPolynomial &a)
{
    panic_if(size() != a.size(), "size mismatch in Fourier addAssign");
    for (unsigned i = 0; i < size(); ++i) {
        re_[i] += a.re_[i];
        im_[i] += a.im_[i];
    }
}

void
FourierPolynomial::mulAddAssign(const FourierPolynomial &a,
                                const FourierPolynomial &b)
{
    panic_if(size() != a.size() || size() != b.size(),
             "size mismatch in Fourier mulAddAssign");
    const unsigned count = size();
    for (unsigned i = 0; i < count; ++i) {
        const double ar = a.re_[i], ai = a.im_[i];
        const double br = b.re_[i], bi = b.im_[i];
        re_[i] += ar * br - ai * bi;
        im_[i] += ar * bi + ai * br;
    }
}

NegacyclicFft::NegacyclicFft(unsigned ring_degree)
    : n_(ring_degree), half_(ring_degree / 2), fft_(ring_degree / 2)
{
    panic_if(!isPowerOfTwo(n_) || n_ < 4, "bad ring degree ", n_);

    twistRe_.resize(half_);
    twistIm_.resize(half_);
    for (unsigned j = 0; j < half_; ++j) {
        const double angle = M_PI * static_cast<double>(j) /
                             static_cast<double>(n_);
        twistRe_[j] = std::cos(angle);
        twistIm_[j] = std::sin(angle);
    }

    scratchRe_.resize(half_);
    scratchIm_.resize(half_);
}

void
NegacyclicFft::forwardReal(const double *input,
                           FourierPolynomial &out) const
{
    panic_if(out.ringDegree() != n_, "FourierPolynomial degree mismatch");
    auto &re = scratchRe_;
    auto &im = scratchIm_;
    // Fold + twist: x_j = (a_j + i a_{j+N/2}) * e^{i pi j / N}.
    for (unsigned j = 0; j < half_; ++j) {
        const double lo = input[j];
        const double hi = input[j + half_];
        re[j] = lo * twistRe_[j] - hi * twistIm_[j];
        im[j] = lo * twistIm_[j] + hi * twistRe_[j];
    }
    fft_.forward(re.data(), im.data());
    for (unsigned j = 0; j < half_; ++j) {
        out.re(j) = re[j];
        out.im(j) = im[j];
    }
}

void
NegacyclicFft::forward(const IntPolynomial &poly,
                       FourierPolynomial &out) const
{
    panic_if(poly.degree() != n_, "polynomial degree mismatch");
    std::vector<double> tmp(n_);
    for (unsigned j = 0; j < n_; ++j)
        tmp[j] = static_cast<double>(poly[j]);
    forwardReal(tmp.data(), out);
}

void
NegacyclicFft::forward(const TorusPolynomial &poly,
                       FourierPolynomial &out) const
{
    panic_if(poly.degree() != n_, "polynomial degree mismatch");
    std::vector<double> tmp(n_);
    for (unsigned j = 0; j < n_; ++j)
        tmp[j] = static_cast<double>(static_cast<std::int32_t>(poly[j]));
    forwardReal(tmp.data(), out);
}

void
NegacyclicFft::inverse(const FourierPolynomial &in,
                       TorusPolynomial &out) const
{
    panic_if(in.ringDegree() != n_, "FourierPolynomial degree mismatch");
    panic_if(out.degree() != n_, "polynomial degree mismatch");
    auto &re = scratchRe_;
    auto &im = scratchIm_;
    for (unsigned j = 0; j < half_; ++j) {
        re[j] = in.re(j);
        im[j] = in.im(j);
    }
    fft_.inverse(re.data(), im.data());
    const double scale = 1.0 / static_cast<double>(half_);
    // Untwist and split back into low/high coefficient halves. The
    // reduction mod 2^32 happens via remainder() so coefficient values
    // far larger than 2^53 (possible with single-level gadgets) still
    // land on the correct torus residue up to FFT round-off.
    const double modulus = 4294967296.0;
    for (unsigned j = 0; j < half_; ++j) {
        const double zr = re[j] * scale;
        const double zi = im[j] * scale;
        const double cr = zr * twistRe_[j] + zi * twistIm_[j];
        const double ci = zi * twistRe_[j] - zr * twistIm_[j];
        out[j] = static_cast<Torus32>(static_cast<std::int64_t>(
            std::llround(std::remainder(cr, modulus))));
        out[j + half_] = static_cast<Torus32>(static_cast<std::int64_t>(
            std::llround(std::remainder(ci, modulus))));
    }
}

const NegacyclicFft &
NegacyclicFft::forDegree(unsigned ring_degree)
{
    thread_local std::map<unsigned, std::unique_ptr<NegacyclicFft>> cache;
    auto &slot = cache[ring_degree];
    if (!slot)
        slot = std::make_unique<NegacyclicFft>(ring_degree);
    return *slot;
}

} // namespace morphling::tfhe
