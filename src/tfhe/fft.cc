#include "fft.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/bits.h"
#include "common/logging.h"
#include "tfhe/fft_dispatch.h"

namespace morphling::tfhe {

namespace {

// Rounding onto the discretized torus is shared with the SIMD kernel
// tiers (fft_kernels.h) so every tier wraps identically: llrint + the
// exact int64 -> uint32 wrap, with the slow remainder() reduction only
// beyond 2^62 (far outside any parameter set here).
using detail::roundToTorus;

} // namespace

ComplexFft::ComplexFft(unsigned size) : size_(size)
{
    panic_if(!isPowerOfTwo(size) || size < 2, "bad FFT size ", size);

    twiddleRe_.resize(size_ / 2);
    twiddleIm_.resize(size_ / 2);
    for (unsigned j = 0; j < size_ / 2; ++j) {
        const double angle = -2.0 * M_PI * static_cast<double>(j) /
                             static_cast<double>(size_);
        twiddleRe_[j] = std::cos(angle);
        twiddleIm_[j] = std::sin(angle);
    }

    bitrev_.resize(size_);
    const unsigned bits = log2Floor(size_);
    for (unsigned i = 0; i < size_; ++i) {
        unsigned r = 0;
        for (unsigned b = 0; b < bits; ++b) {
            if (i & (1u << b))
                r |= 1u << (bits - 1 - b);
        }
        bitrev_[i] = r;
    }
}

void
ComplexFft::run(double *re, double *im, int sign) const
{
    // Bit-reversal permutation.
    for (unsigned i = 0; i < size_; ++i) {
        const unsigned j = bitrev_[i];
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    // Iterative radix-2 decimation-in-time butterflies.
    for (unsigned len = 2; len <= size_; len <<= 1) {
        const unsigned stride = size_ / len;
        const unsigned half_len = len / 2;
        for (unsigned base = 0; base < size_; base += len) {
            for (unsigned t = 0; t < half_len; ++t) {
                const double wr = twiddleRe_[t * stride];
                const double wi = sign < 0 ? twiddleIm_[t * stride]
                                           : -twiddleIm_[t * stride];
                const unsigned lo = base + t;
                const unsigned hi = lo + half_len;
                const double xr = re[hi] * wr - im[hi] * wi;
                const double xi = re[hi] * wi + im[hi] * wr;
                re[hi] = re[lo] - xr;
                im[hi] = im[lo] - xi;
                re[lo] += xr;
                im[lo] += xi;
            }
        }
    }
}

void
ComplexFft::forward(double *re, double *im) const
{
    run(re, im, -1);
}

void
ComplexFft::inverse(double *re, double *im) const
{
    run(re, im, +1);
}

Radix4Fft::Radix4Fft(unsigned size) : size_(size)
{
    panic_if(!isPowerOfTwo(size) || size < 2, "bad FFT size ", size);

    unsigned len = size_;
    while (len >= 4) {
        const unsigned q = len / 4;
        std::vector<double> tw(6 * static_cast<std::size_t>(q));
        for (unsigned j = 0; j < q; ++j) {
            const double a = -2.0 * M_PI * static_cast<double>(j) /
                             static_cast<double>(len);
            tw[0 * q + j] = std::cos(a);
            tw[1 * q + j] = std::sin(a);
            tw[2 * q + j] = std::cos(2.0 * a);
            tw[3 * q + j] = std::sin(2.0 * a);
            tw[4 * q + j] = std::cos(3.0 * a);
            tw[5 * q + j] = std::sin(3.0 * a);
        }
        stageLen_.push_back(len);
        stageTw_.push_back(std::move(tw));
        len /= 4;
    }
    radix2Tail_ = (len == 2);
}

void
Radix4Fft::radix4ForwardStage(unsigned stage, double *re, double *im) const
{
    const unsigned len = stageLen_[stage];
    const unsigned q = len / 4;
    const double *tw = stageTw_[stage].data();
    const double *__restrict w1r = tw + 0 * q;
    const double *__restrict w1i = tw + 1 * q;
    const double *__restrict w2r = tw + 2 * q;
    const double *__restrict w2i = tw + 3 * q;
    const double *__restrict w3r = tw + 4 * q;
    const double *__restrict w3i = tw + 5 * q;

    for (unsigned base = 0; base < size_; base += len) {
        double *__restrict r0 = re + base;
        double *__restrict r1 = r0 + q;
        double *__restrict r2 = r1 + q;
        double *__restrict r3 = r2 + q;
        double *__restrict i0 = im + base;
        double *__restrict i1 = i0 + q;
        double *__restrict i2 = i1 + q;
        double *__restrict i3 = i2 + q;
        for (unsigned j = 0; j < q; ++j) {
            const double t0r = r0[j] + r2[j], t0i = i0[j] + i2[j];
            const double t1r = r0[j] - r2[j], t1i = i0[j] - i2[j];
            const double t2r = r1[j] + r3[j], t2i = i1[j] + i3[j];
            const double t3r = r1[j] - r3[j], t3i = i1[j] - i3[j];
            r0[j] = t0r + t2r;
            i0[j] = t0i + t2i;
            // y1 = (t1 - i*t3) * w, y2 = (t0 - t2) * w^2,
            // y3 = (t1 + i*t3) * w^3 (forward kernel e^{-i...}).
            const double y1r = t1r + t3i, y1i = t1i - t3r;
            r1[j] = y1r * w1r[j] - y1i * w1i[j];
            i1[j] = y1r * w1i[j] + y1i * w1r[j];
            const double y2r = t0r - t2r, y2i = t0i - t2i;
            r2[j] = y2r * w2r[j] - y2i * w2i[j];
            i2[j] = y2r * w2i[j] + y2i * w2r[j];
            const double y3r = t1r - t3i, y3i = t1i + t3r;
            r3[j] = y3r * w3r[j] - y3i * w3i[j];
            i3[j] = y3r * w3i[j] + y3i * w3r[j];
        }
    }
}

void
Radix4Fft::radix4InverseStage(unsigned stage, double *re, double *im) const
{
    const unsigned len = stageLen_[stage];
    const unsigned q = len / 4;
    const double *tw = stageTw_[stage].data();
    const double *__restrict w1r = tw + 0 * q;
    const double *__restrict w1i = tw + 1 * q;
    const double *__restrict w2r = tw + 2 * q;
    const double *__restrict w2i = tw + 3 * q;
    const double *__restrict w3r = tw + 4 * q;
    const double *__restrict w3i = tw + 5 * q;

    for (unsigned base = 0; base < size_; base += len) {
        double *__restrict r0 = re + base;
        double *__restrict r1 = r0 + q;
        double *__restrict r2 = r1 + q;
        double *__restrict r3 = r2 + q;
        double *__restrict i0 = im + base;
        double *__restrict i1 = i0 + q;
        double *__restrict i2 = i1 + q;
        double *__restrict i3 = i2 + q;
        for (unsigned j = 0; j < q; ++j) {
            // u_s = y_s * conj(w^s); then the conjugate butterfly
            // (4 * DFT4^-1), the exact transpose of the forward stage.
            const double u1r = r1[j] * w1r[j] + i1[j] * w1i[j];
            const double u1i = i1[j] * w1r[j] - r1[j] * w1i[j];
            const double u2r = r2[j] * w2r[j] + i2[j] * w2i[j];
            const double u2i = i2[j] * w2r[j] - r2[j] * w2i[j];
            const double u3r = r3[j] * w3r[j] + i3[j] * w3i[j];
            const double u3i = i3[j] * w3r[j] - r3[j] * w3i[j];
            const double t0r = r0[j] + u2r, t0i = i0[j] + u2i;
            const double t1r = r0[j] - u2r, t1i = i0[j] - u2i;
            const double t2r = u1r + u3r, t2i = u1i + u3i;
            const double t3r = u1r - u3r, t3i = u1i - u3i;
            r0[j] = t0r + t2r;
            i0[j] = t0i + t2i;
            r1[j] = t1r - t3i;
            i1[j] = t1i + t3r;
            r2[j] = t0r - t2r;
            i2[j] = t0i - t2i;
            r3[j] = t1r + t3i;
            i3[j] = t1i - t3r;
        }
    }
}

void
Radix4Fft::radix2Stage(double *re, double *im) const
{
    // Twiddle-free length-2 butterflies; self-inverse up to the scale
    // the unscaled inverse contract already absorbs.
    for (unsigned p = 0; p < size_; p += 2) {
        const double ar = re[p], ai = im[p];
        const double br = re[p + 1], bi = im[p + 1];
        re[p] = ar + br;
        im[p] = ai + bi;
        re[p + 1] = ar - br;
        im[p + 1] = ai - bi;
    }
}

void
Radix4Fft::forwardStagesFrom(unsigned first_stage, double *re,
                             double *im) const
{
    for (unsigned s = first_stage; s < numStages(); ++s)
        radix4ForwardStage(s, re, im);
    if (radix2Tail_)
        radix2Stage(re, im);
}

void
Radix4Fft::forwardPermuted(double *re, double *im) const
{
    forwardStagesFrom(0, re, im);
}

void
Radix4Fft::inverseStagesDownTo(unsigned stop_stage, double *re,
                               double *im) const
{
    if (radix2Tail_)
        radix2Stage(re, im);
    for (unsigned s = numStages(); s-- > stop_stage;)
        radix4InverseStage(s, re, im);
}

void
Radix4Fft::inversePermuted(double *re, double *im) const
{
    inverseStagesDownTo(0, re, im);
}

FourierPolynomial::FourierPolynomial(unsigned ring_degree)
    : ringDegree_(ring_degree), re_(ring_degree / 2, 0.0),
      im_(ring_degree / 2, 0.0)
{
    panic_if(!isPowerOfTwo(ring_degree) || ring_degree < 4,
             "bad ring degree ", ring_degree);
}

void
FourierPolynomial::clear()
{
    std::fill(re_.begin(), re_.end(), 0.0);
    std::fill(im_.begin(), im_.end(), 0.0);
}

void
FourierPolynomial::addAssign(const FourierPolynomial &a)
{
    panic_if(size() != a.size(), "size mismatch in Fourier addAssign");
    detail::activeBatchKernels().add(size(), a.re_.data(), a.im_.data(),
                                     re_.data(), im_.data());
}

void
FourierPolynomial::mulAddAssign(const FourierPolynomial &a,
                                const FourierPolynomial &b)
{
    panic_if(size() != a.size() || size() != b.size(),
             "size mismatch in Fourier mulAddAssign");
    detail::activeBatchKernels().mulAdd(size(), a.re_.data(), a.im_.data(),
                                        b.re_.data(), b.im_.data(),
                                        re_.data(), im_.data());
}

NegacyclicFft::NegacyclicFft(unsigned ring_degree)
    : n_(ring_degree), half_(ring_degree / 2), fft_(ring_degree / 2)
{
    panic_if(!isPowerOfTwo(n_) || n_ < 4, "bad ring degree ", n_);

    twistRe_.resize(half_);
    twistIm_.resize(half_);
    for (unsigned j = 0; j < half_; ++j) {
        const double angle = M_PI * static_cast<double>(j) /
                             static_cast<double>(n_);
        twistRe_[j] = std::cos(angle);
        twistIm_[j] = std::sin(angle);
    }

    scratchRe_.resize(half_);
    scratchIm_.resize(half_);
}

void
NegacyclicFft::forwardFromInt(const std::int32_t *input,
                              FourierPolynomial &out) const
{
    panic_if(out.ringDegree() != n_, "FourierPolynomial degree mismatch");
    double *__restrict re = out.reData();
    double *__restrict im = out.imData();
    const double *__restrict tr = twistRe_.data();
    const double *__restrict ti = twistIm_.data();

    if (half_ >= 4) {
        // Fold + twist fused with the first DIF butterfly stage: load
        // x_p = (a_p + i a_{p+N/2}) * e^{i pi p / N} for the four
        // quarter positions and butterfly in the same pass.
        const unsigned q = half_ / 4;
        const double *tw = fft_.stageTwiddles(0);
        const double *__restrict w1r = tw + 0 * q;
        const double *__restrict w1i = tw + 1 * q;
        const double *__restrict w2r = tw + 2 * q;
        const double *__restrict w2i = tw + 3 * q;
        const double *__restrict w3r = tw + 4 * q;
        const double *__restrict w3i = tw + 5 * q;
        for (unsigned j = 0; j < q; ++j) {
            const unsigned p1 = j + q, p2 = j + 2 * q, p3 = j + 3 * q;
            const double a_lo = static_cast<double>(input[j]);
            const double a_hi = static_cast<double>(input[j + half_]);
            const double ar = a_lo * tr[j] - a_hi * ti[j];
            const double ai = a_lo * ti[j] + a_hi * tr[j];
            const double b_lo = static_cast<double>(input[p1]);
            const double b_hi = static_cast<double>(input[p1 + half_]);
            const double br = b_lo * tr[p1] - b_hi * ti[p1];
            const double bi = b_lo * ti[p1] + b_hi * tr[p1];
            const double c_lo = static_cast<double>(input[p2]);
            const double c_hi = static_cast<double>(input[p2 + half_]);
            const double cr = c_lo * tr[p2] - c_hi * ti[p2];
            const double ci = c_lo * ti[p2] + c_hi * tr[p2];
            const double d_lo = static_cast<double>(input[p3]);
            const double d_hi = static_cast<double>(input[p3 + half_]);
            const double dr = d_lo * tr[p3] - d_hi * ti[p3];
            const double di = d_lo * ti[p3] + d_hi * tr[p3];

            const double t0r = ar + cr, t0i = ai + ci;
            const double t1r = ar - cr, t1i = ai - ci;
            const double t2r = br + dr, t2i = bi + di;
            const double t3r = br - dr, t3i = bi - di;
            re[j] = t0r + t2r;
            im[j] = t0i + t2i;
            const double y1r = t1r + t3i, y1i = t1i - t3r;
            re[p1] = y1r * w1r[j] - y1i * w1i[j];
            im[p1] = y1r * w1i[j] + y1i * w1r[j];
            const double y2r = t0r - t2r, y2i = t0i - t2i;
            re[p2] = y2r * w2r[j] - y2i * w2i[j];
            im[p2] = y2r * w2i[j] + y2i * w2r[j];
            const double y3r = t1r - t3i, y3i = t1i + t3r;
            re[p3] = y3r * w3r[j] - y3i * w3i[j];
            im[p3] = y3r * w3i[j] + y3i * w3r[j];
        }
        fft_.forwardStagesFrom(1, re, im);
    } else {
        for (unsigned j = 0; j < half_; ++j) {
            const double lo = static_cast<double>(input[j]);
            const double hi = static_cast<double>(input[j + half_]);
            re[j] = lo * tr[j] - hi * ti[j];
            im[j] = lo * ti[j] + hi * tr[j];
        }
        fft_.forwardPermuted(re, im);
    }
}

void
NegacyclicFft::forward(const IntPolynomial &poly,
                       FourierPolynomial &out) const
{
    panic_if(poly.degree() != n_, "polynomial degree mismatch");
    forwardFromInt(poly.data(), out);
}

void
NegacyclicFft::forward(const TorusPolynomial &poly,
                       FourierPolynomial &out) const
{
    panic_if(poly.degree() != n_, "polynomial degree mismatch");
    // Torus coefficients are read as signed 32-bit integers (the
    // standard TFHE convention); int32/uint32 aliasing is well-defined.
    forwardFromInt(reinterpret_cast<const std::int32_t *>(poly.data()),
                   out);
}

void
NegacyclicFft::inverseCore(double *re, double *im,
                           TorusPolynomial &out) const
{
    panic_if(out.degree() != n_, "polynomial degree mismatch");
    const double scale = 1.0 / static_cast<double>(half_);
    const double *__restrict tr = twistRe_.data();
    const double *__restrict ti = twistIm_.data();
    Torus32 *__restrict o = out.data();

    // Untwist and split back into low/high coefficient halves; the
    // reduction mod 2^32 happens in roundToTorus().
    const auto store = [&](unsigned p, double xr, double xi) {
        const double zr = xr * scale;
        const double zi = xi * scale;
        o[p] = roundToTorus(zr * tr[p] + zi * ti[p]);
        o[p + half_] = roundToTorus(zi * tr[p] - zr * ti[p]);
    };

    if (half_ >= 4) {
        fft_.inverseStagesDownTo(1, re, im);
        // Last inverse stage fused with untwist + scale + round: its
        // outputs land in natural order, each written exactly once.
        const unsigned q = half_ / 4;
        const double *tw = fft_.stageTwiddles(0);
        const double *__restrict w1r = tw + 0 * q;
        const double *__restrict w1i = tw + 1 * q;
        const double *__restrict w2r = tw + 2 * q;
        const double *__restrict w2i = tw + 3 * q;
        const double *__restrict w3r = tw + 4 * q;
        const double *__restrict w3i = tw + 5 * q;
        for (unsigned j = 0; j < q; ++j) {
            const unsigned p1 = j + q, p2 = j + 2 * q, p3 = j + 3 * q;
            const double u1r = re[p1] * w1r[j] + im[p1] * w1i[j];
            const double u1i = im[p1] * w1r[j] - re[p1] * w1i[j];
            const double u2r = re[p2] * w2r[j] + im[p2] * w2i[j];
            const double u2i = im[p2] * w2r[j] - re[p2] * w2i[j];
            const double u3r = re[p3] * w3r[j] + im[p3] * w3i[j];
            const double u3i = im[p3] * w3r[j] - re[p3] * w3i[j];
            const double t0r = re[j] + u2r, t0i = im[j] + u2i;
            const double t1r = re[j] - u2r, t1i = im[j] - u2i;
            const double t2r = u1r + u3r, t2i = u1i + u3i;
            const double t3r = u1r - u3r, t3i = u1i - u3i;
            store(j, t0r + t2r, t0i + t2i);
            store(p1, t1r - t3i, t1i + t3r);
            store(p2, t0r - t2r, t0i - t2i);
            store(p3, t1r + t3i, t1i - t3r);
        }
    } else {
        fft_.inversePermuted(re, im);
        for (unsigned j = 0; j < half_; ++j)
            store(j, re[j], im[j]);
    }
}

void
NegacyclicFft::inverse(const FourierPolynomial &in,
                       TorusPolynomial &out) const
{
    panic_if(in.ringDegree() != n_, "FourierPolynomial degree mismatch");
    auto &re = scratchRe_;
    auto &im = scratchIm_;
    std::copy(in.reData(), in.reData() + half_, re.data());
    std::copy(in.imData(), in.imData() + half_, im.data());
    inverseCore(re.data(), im.data(), out);
}

void
NegacyclicFft::inverseInPlace(FourierPolynomial &in,
                              TorusPolynomial &out) const
{
    panic_if(in.ringDegree() != n_, "FourierPolynomial degree mismatch");
    inverseCore(in.reData(), in.imData(), out);
}

const NegacyclicFft &
NegacyclicFft::forDegree(unsigned ring_degree)
{
    thread_local std::map<unsigned, std::unique_ptr<NegacyclicFft>> cache;
    auto &slot = cache[ring_degree];
    if (!slot)
        slot = std::make_unique<NegacyclicFft>(ring_degree);
    return *slot;
}

BatchFft::BatchFft(unsigned ring_degree) : fft_(ring_degree)
{
    const Radix4Fft &core = fft_.fft_;
    stageLen_.resize(core.numStages());
    stageTw_.resize(core.numStages());
    for (unsigned s = 0; s < core.numStages(); ++s) {
        stageLen_[s] = core.stageLen(s);
        stageTw_[s] = core.stageTwiddles(s);
    }

    view_.n = fft_.n_;
    view_.half = fft_.half_;
    view_.numStages = core.numStages();
    view_.radix2Tail = core.hasRadix2Tail();
    view_.stageLen = stageLen_.data();
    view_.stageTw = stageTw_.data();
    view_.twistRe = fft_.twistRe_.data();
    view_.twistIm = fft_.twistIm_.data();

    // Lane scratch for the widest tier, so a later dispatch override
    // to a wider kernel never needs a reallocation.
    laneRe_.resize(static_cast<std::size_t>(detail::kMaxFftLanes) *
                   fft_.half_);
    laneIm_.resize(laneRe_.size());
    padRe_.resize(fft_.half_);
    padIm_.resize(fft_.half_);
    padTorus_.resize(fft_.n_);
}

const detail::BatchKernels *
BatchFft::pickKernel(const detail::KernelLadder &ladder,
                     unsigned remaining) const
{
    // Rungs are widest-first; take the widest whose lanes all get real
    // work. Track the narrowest vector rung along the way: a short
    // group of >= 2 still beats per-polynomial scalar calls when run
    // through it with the leftover lanes padded.
    const detail::BatchKernels *pad = nullptr;
    for (unsigned r = 0; r < ladder.count; ++r) {
        const detail::BatchKernels *k = ladder.rung[r];
        if (k->width <= 1 || view_.half % k->width != 0)
            continue;
        if (k->width <= remaining)
            return k;
        pad = k;
    }
    return remaining >= 2 ? pad : nullptr;
}

void
BatchFft::forward(const std::int32_t *const *in,
                  FourierPolynomial *const *out, unsigned count) const
{
    const detail::KernelLadder &ladder = detail::activeKernelLadder();
    unsigned i = 0;
    while (i < count) {
        const detail::BatchKernels *k = pickKernel(ladder, count - i);
        if (!k) {
            // Scalar tier, too-small transform, or a lone trailing
            // polynomial: the single-polynomial engine (bit-identical
            // by construction).
            fft_.forwardFromInt(in[i], *out[i]);
            ++i;
            continue;
        }
        const unsigned real = std::min(k->width, count - i);
        const std::int32_t *in_w[detail::kMaxFftLanes];
        double *re_w[detail::kMaxFftLanes];
        double *im_w[detail::kMaxFftLanes];
        for (unsigned w = 0; w < real; ++w) {
            FourierPolynomial &o = *out[i + w];
            panic_if(o.ringDegree() != fft_.n_,
                     "FourierPolynomial degree mismatch");
            in_w[w] = in[i + w];
            re_w[w] = o.reData();
            im_w[w] = o.imData();
        }
        // Idle lanes of a padded short group re-transform the first
        // polynomial into the shared throwaway spectrum.
        for (unsigned w = real; w < k->width; ++w) {
            in_w[w] = in[i];
            re_w[w] = padRe_.data();
            im_w[w] = padIm_.data();
        }
        k->forwardW(view_, in_w, re_w, im_w, laneRe_.data(),
                    laneIm_.data());
        i += real;
    }
}

void
BatchFft::forward(const IntPolynomial *const *in,
                  FourierPolynomial *const *out, unsigned count) const
{
    const std::int32_t *raw[detail::kMaxFftLanes];
    unsigned i = 0;
    while (i < count) {
        const unsigned group =
            std::min(count - i, detail::kMaxFftLanes);
        for (unsigned w = 0; w < group; ++w) {
            panic_if(in[i + w]->degree() != fft_.n_,
                     "polynomial degree mismatch");
            raw[w] = in[i + w]->data();
        }
        forward(raw, out + i, group);
        i += group;
    }
}

void
BatchFft::inverseInPlace(FourierPolynomial *const *in,
                         TorusPolynomial *const *out, unsigned count) const
{
    const detail::KernelLadder &ladder = detail::activeKernelLadder();
    unsigned i = 0;
    while (i < count) {
        const detail::BatchKernels *k = pickKernel(ladder, count - i);
        if (!k) {
            fft_.inverseInPlace(*in[i], *out[i]);
            ++i;
            continue;
        }
        const unsigned real = std::min(k->width, count - i);
        const double *re_w[detail::kMaxFftLanes];
        const double *im_w[detail::kMaxFftLanes];
        Torus32 *out_w[detail::kMaxFftLanes];
        for (unsigned w = 0; w < real; ++w) {
            FourierPolynomial &f = *in[i + w];
            panic_if(f.ringDegree() != fft_.n_,
                     "FourierPolynomial degree mismatch");
            panic_if(out[i + w]->degree() != fft_.n_,
                     "polynomial degree mismatch");
            re_w[w] = f.reData();
            im_w[w] = f.imData();
            out_w[w] = out[i + w]->data();
        }
        // Idle lanes re-read the first spectrum (the vector kernel
        // copies inputs to scratch before writing any output, so the
        // aliasing is read-then-write safe) and round into the shared
        // throwaway torus buffer.
        for (unsigned w = real; w < k->width; ++w) {
            re_w[w] = in[i]->reData();
            im_w[w] = in[i]->imData();
            out_w[w] = padTorus_.data();
        }
        k->inverseW(view_, re_w, im_w, out_w, laneRe_.data(),
                    laneIm_.data());
        i += real;
    }
}

const BatchFft &
BatchFft::forDegree(unsigned ring_degree)
{
    thread_local std::map<unsigned, std::unique_ptr<BatchFft>> cache;
    auto &slot = cache[ring_degree];
    if (!slot)
        slot = std::make_unique<BatchFft>(ring_degree);
    return *slot;
}

} // namespace morphling::tfhe
