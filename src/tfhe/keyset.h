/**
 * @file
 * Evaluation-key material: the bootstrapping key (BSK) and the
 * key-switching key (KSK), plus a convenience KeySet bundling all
 * secret/evaluation keys of one party.
 */

#ifndef MORPHLING_TFHE_KEYSET_H
#define MORPHLING_TFHE_KEYSET_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "tfhe/ggsw.h"
#include "tfhe/glwe.h"
#include "tfhe/lwe.h"
#include "tfhe/params.h"

namespace morphling::tfhe {

/**
 * The bootstrapping key: one GGSW encryption of each LWE key bit,
 * stored pre-transformed in the Fourier domain (the hardware's
 * Private-A2 format; the paper assumes "BSK is already pre-computed in
 * the transform-domain", Section III).
 */
class BootstrapKey
{
  public:
    BootstrapKey() = default;

    /** Encrypt every bit of lwe_key under glwe_key. */
    static BootstrapKey generate(const LweKey &lwe_key,
                                 const GlweKey &glwe_key, Rng &rng);

    /** Rebuild from transformed entries (deserialization). */
    static BootstrapKey fromEntries(std::vector<FourierGgsw> entries);

    unsigned size() const
    {
        return static_cast<unsigned>(entries_.size());
    }
    const FourierGgsw &entry(unsigned i) const { return entries_[i]; }

  private:
    std::vector<FourierGgsw> entries_; //!< BSK_1 .. BSK_n
};

/**
 * The key-switching key: kN * l_k LWE encryptions
 * KSK_(i,j) = LWE_s(s'_i * q / base^(j+1)) that homomorphically map a
 * ciphertext under the extracted key s' back to the original key s
 * (Algorithm 1, line 6).
 */
class KeySwitchKey
{
  public:
    KeySwitchKey() = default;

    /** Build the key from source (extracted, dim kN) to target
     *  (original, dim n). */
    static KeySwitchKey generate(const LweKey &source_key,
                                 const LweKey &target_key, Rng &rng);

    /** Rebuild from raw entries (deserialization). */
    static KeySwitchKey fromEntries(unsigned source_dim,
                                    unsigned target_dim, unsigned levels,
                                    unsigned base_bits,
                                    std::vector<LweCiphertext> entries);

    unsigned sourceDimension() const { return sourceDim_; }
    unsigned levels() const { return levels_; }
    unsigned baseBits() const { return baseBits_; }

    const LweCiphertext &at(unsigned i, unsigned j) const
    {
        return entries_[static_cast<std::size_t>(i) * levels_ + j];
    }

    /**
     * Apply key switching: re-encrypt ct (under the source key) to the
     * target key. Pure scalar multiply-accumulate, the memory-bound
     * task the paper routes to the VPU.
     */
    LweCiphertext apply(const LweCiphertext &ct) const;

    /** Key switching into an existing ciphertext; allocation-free once
     *  `out` has the target dimension. */
    void applyInto(const LweCiphertext &ct, LweCiphertext &out) const;

  private:
    std::vector<LweCiphertext> entries_;
    unsigned sourceDim_ = 0;
    unsigned targetDim_ = 0;
    unsigned levels_ = 0;
    unsigned baseBits_ = 0;
};

/**
 * All keys of one party: the LWE secret key (encryption key), the GLWE
 * secret key (bootstrapping accumulator key), and the two evaluation
 * keys. Generation order matches the TFHE key ceremony.
 */
struct KeySet
{
    TfheParams params;
    LweKey lweKey;        //!< s, dimension n
    GlweKey glweKey;      //!< S, k ring polynomials
    LweKey extractedKey;  //!< s', dimension kN (flattened S)
    BootstrapKey bsk;
    KeySwitchKey ksk;

    /** Generate a complete key set from one seed. */
    static KeySet generate(const TfheParams &params, Rng &rng);
};

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_KEYSET_H
