/**
 * @file
 * Per-thread scratch memory for the bootstrap hot path.
 *
 * A programmable bootstrap executes n CMux gates, each performing one
 * gadget decomposition, (k+1)*l_b forward FFTs, (k+1)*l_b pointwise
 * multiply-accumulates and (k+1) inverse FFTs. Allocating the digit
 * polynomials, Fourier accumulators and diff ciphertexts fresh in every
 * iteration dominates the runtime of the CPU substrate; the hardware
 * analogue is the paper's fixed on-chip buffer set (Private-A1/A2,
 * POLY-ACC-REG) that every blind-rotation iteration reuses.
 *
 * BootstrapWorkspace owns every intermediate buffer of the pipeline.
 * ensure() (re)shapes them for one parameter geometry and is a no-op
 * when the shapes already match, so a warmed-up bootstrap through the
 * workspace entry points performs zero heap allocations (asserted by
 * tests/test_workspace.cc). A workspace is single-thread-only;
 * forThisThread() hands out one instance per thread, which the legacy
 * (workspace-free) entry points use transparently.
 */

#ifndef MORPHLING_TFHE_WORKSPACE_H
#define MORPHLING_TFHE_WORKSPACE_H

#include <cstdint>
#include <vector>

#include "tfhe/ggsw.h"
#include "tfhe/glwe.h"
#include "tfhe/lwe.h"

namespace morphling::tfhe {

/**
 * Scratch buffers threaded through externalProductFourier /
 * cmuxRotateInPlace / blindRotate / bootstrapInto.
 *
 * Members are public by design: the workspace is a bag of buffers owned
 * by the pipeline stages, not an abstraction boundary. Their contents
 * between calls are unspecified.
 */
class BootstrapWorkspace
{
  public:
    BootstrapWorkspace() = default;

    BootstrapWorkspace(const BootstrapWorkspace &) = delete;
    BootstrapWorkspace &operator=(const BootstrapWorkspace &) = delete;

    /**
     * (Re)shape the external-product scratch for GLWE dimension k, ring
     * degree N and the given gadget. No-op (and allocation-free) when
     * the shapes already match.
     */
    void ensure(unsigned glwe_dim, unsigned poly_degree, unsigned levels,
                unsigned base_bits);

    /** The calling thread's workspace. Entry points that take no
     *  explicit workspace route through this instance. */
    static BootstrapWorkspace &forThisThread();

    // --- external product / CMux scratch -----------------------------
    GadgetPlan plan;                   //!< hoisted decomposition consts
    std::vector<IntPolynomial> digits; //!< (k+1)*l_b digit polynomials
    std::vector<FourierPolynomial> digitsF; //!< (k+1)*l_b transforms
    std::vector<FourierPolynomial> accF; //!< k+1 transform accumulators
    GlweCiphertext diff;               //!< X^a * ACC - ACC
    std::vector<TorusPolynomial> prods; //!< k+1 inverse-FFT outputs

    // Stable pointer views over the buffers above, preshaped by
    // ensure() so the batched FFT entry points (BatchFft) can be fed
    // without per-call allocation. batchTorus is filled per call (its
    // targets live in the caller's ciphertext); the rest point at the
    // workspace's own buffers.
    std::vector<const IntPolynomial *> batchDigits;  //!< -> digits
    std::vector<FourierPolynomial *> batchDigitsF;   //!< -> digitsF
    std::vector<FourierPolynomial *> batchAccF;      //!< -> accF
    std::vector<TorusPolynomial *> batchTorus;       //!< k+1 slots

    // --- bootstrap pipeline scratch ----------------------------------
    GlweCiphertext acc;                 //!< blind-rotation accumulator
    TorusPolynomial testPoly;           //!< built LUT test polynomial
    std::vector<std::uint32_t> switched; //!< mod-switched ciphertext
    LweCiphertext extracted;            //!< sample-extraction output

  private:
    unsigned glweDim_ = 0;
    unsigned polyDegree_ = 0;
};

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_WORKSPACE_H
