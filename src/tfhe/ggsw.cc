#include "ggsw.h"

#include "common/logging.h"

namespace morphling::tfhe {

void
gadgetDecomposeScalar(Torus32 value, unsigned base_bits, unsigned levels,
                      std::int32_t *digits)
{
    panic_if(base_bits == 0 || levels == 0 || base_bits * levels > 32,
             "bad gadget (base 2^", base_bits, ", ", levels, " levels)");
    const std::uint32_t mask = (base_bits == 32)
                                   ? ~0u
                                   : ((1u << base_bits) - 1);
    const std::int32_t half = std::int32_t{1} << (base_bits - 1);

    // Centering offset: adding beta/2 at every level lets us subtract
    // beta/2 from each extracted digit, mapping digits from [0, beta)
    // to [-beta/2, beta/2). Rounding offset: half an ulp of the last
    // level converts the truncation of the undecomposed tail into
    // round-to-nearest.
    std::uint32_t offset = 0;
    for (unsigned j = 1; j <= levels; ++j)
        offset += std::uint32_t{1} << (31 - (j - 1) * base_bits);
    if (levels * base_bits < 32)
        offset += std::uint32_t{1} << (32 - levels * base_bits - 1);

    const std::uint32_t shifted = value + offset;
    for (unsigned j = 1; j <= levels; ++j) {
        const unsigned shift = 32 - j * base_bits;
        const std::uint32_t digit = (shifted >> shift) & mask;
        digits[j - 1] = static_cast<std::int32_t>(digit) - half;
    }
}

void
gadgetDecompose(const TorusPolynomial &poly, unsigned base_bits,
                unsigned levels, std::vector<IntPolynomial> &out)
{
    const unsigned n = poly.degree();
    out.resize(levels);
    for (auto &p : out) {
        if (p.degree() != n)
            p = IntPolynomial(n);
    }
    std::vector<std::int32_t> digits(levels);
    for (unsigned c = 0; c < n; ++c) {
        gadgetDecomposeScalar(poly[c], base_bits, levels, digits.data());
        for (unsigned j = 0; j < levels; ++j)
            out[j][c] = digits[j];
    }
}

GgswCiphertext
GgswCiphertext::encrypt(const GlweKey &key, std::int32_t message,
                        double stddev, Rng &rng)
{
    const auto &params = key.params();
    const unsigned k = key.dimension();
    const unsigned levels = params.bskLevels;
    const unsigned base_bits = params.bskBaseBits;

    GgswCiphertext out;
    out.baseBits_ = base_bits;
    out.levels_ = levels;
    out.rows_.reserve(static_cast<std::size_t>(k + 1) * levels);

    TorusPolynomial zero(params.polyDegree);
    for (unsigned u = 0; u <= k; ++u) {
        for (unsigned j = 0; j < levels; ++j) {
            GlweCiphertext row =
                GlweCiphertext::encrypt(key, zero, stddev, rng);
            // Add m * q / beta^(j+1) to the constant coefficient of
            // component u.
            const Torus32 gadget = static_cast<Torus32>(
                static_cast<std::int64_t>(message)
                << (32 - (j + 1) * base_bits));
            row.component(u)[0] += gadget;
            out.rows_.push_back(std::move(row));
        }
    }
    return out;
}

FourierGgsw
FourierGgsw::fromGgsw(const GgswCiphertext &ggsw)
{
    FourierGgsw out;
    out.baseBits_ = ggsw.baseBits();
    out.levels_ = ggsw.levels();
    out.rows_.resize(ggsw.numRows());

    panic_if(ggsw.numRows() == 0, "empty GGSW");
    const unsigned n = ggsw.row(0).polyDegree();
    const auto &fft = NegacyclicFft::forDegree(n);
    for (unsigned r = 0; r < ggsw.numRows(); ++r) {
        const auto &row = ggsw.row(r);
        auto &dst = out.rows_[r];
        dst.reserve(row.dimension() + 1);
        for (unsigned c = 0; c <= row.dimension(); ++c) {
            FourierPolynomial fp(n);
            fft.forward(row.component(c), fp);
            dst.push_back(std::move(fp));
        }
    }
    return out;
}

FourierGgsw
FourierGgsw::fromRows(unsigned base_bits, unsigned levels,
                      std::vector<std::vector<FourierPolynomial>> rows)
{
    FourierGgsw out;
    out.baseBits_ = base_bits;
    out.levels_ = levels;
    out.rows_ = std::move(rows);
    panic_if(out.rows_.empty(), "empty GGSW rows");
    return out;
}

GlweCiphertext
externalProductSchoolbook(const GgswCiphertext &ggsw,
                          const GlweCiphertext &input)
{
    const unsigned k = input.dimension();
    const unsigned n = input.polyDegree();
    const unsigned levels = ggsw.levels();
    panic_if(ggsw.numRows() != (k + 1) * levels,
             "GGSW/GLWE shape mismatch");

    GlweCiphertext result(k, n);
    std::vector<IntPolynomial> digits;
    for (unsigned u = 0; u <= k; ++u) {
        gadgetDecompose(input.component(u), ggsw.baseBits(), levels,
                        digits);
        for (unsigned j = 0; j < levels; ++j) {
            const auto &row = ggsw.row(u * levels + j);
            for (unsigned c = 0; c <= k; ++c) {
                negacyclicMulAddSchoolbook(result.component(c), digits[j],
                                           row.component(c));
            }
        }
    }
    return result;
}

GlweCiphertext
externalProductFourier(const FourierGgsw &ggsw, const GlweCiphertext &input)
{
    const unsigned k = input.dimension();
    const unsigned n = input.polyDegree();
    const unsigned levels = ggsw.levels();
    panic_if(ggsw.numRows() != (k + 1) * levels,
             "GGSW/GLWE shape mismatch");
    panic_if(ggsw.numCols() != k + 1, "GGSW column count mismatch");

    const auto &fft = NegacyclicFft::forDegree(n);

    // (1): decompose all components, transform each digit polynomial.
    // These (k+1)*l_b forward transforms are the ones the hardware
    // shares across a VPE row (input transform-domain reuse).
    std::vector<IntPolynomial> digits;
    std::vector<FourierPolynomial> digits_f;
    digits_f.reserve(static_cast<std::size_t>(k + 1) * levels);
    for (unsigned u = 0; u <= k; ++u) {
        gadgetDecompose(input.component(u), ggsw.baseBits(), levels,
                        digits);
        for (unsigned j = 0; j < levels; ++j) {
            FourierPolynomial fp(n);
            fft.forward(digits[j], fp);
            digits_f.push_back(std::move(fp));
        }
    }

    // (2): one dot product per output component, accumulated entirely
    // in the transform domain (output transform-domain reuse: a single
    // inverse FFT per component, not per product).
    GlweCiphertext result(k, n);
    FourierPolynomial acc(n);
    for (unsigned c = 0; c <= k; ++c) {
        acc.clear();
        for (unsigned r = 0; r < digits_f.size(); ++r)
            acc.mulAddAssign(digits_f[r], ggsw.at(r, c));
        fft.inverse(acc, result.component(c));
    }
    return result;
}

GlweCiphertext
cmuxRotate(const FourierGgsw &ggsw, const GlweCiphertext &input,
           unsigned power)
{
    // Lambda = X^power * ACC - ACC ...
    GlweCiphertext diff = input.mulByXPower(power);
    diff.subAssign(input);
    // ... then ACC' = BSK [.] Lambda + ACC.
    GlweCiphertext result = externalProductFourier(ggsw, diff);
    result.addAssign(input);
    return result;
}

} // namespace morphling::tfhe
