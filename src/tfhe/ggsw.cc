#include "ggsw.h"

#include "common/logging.h"
#include "tfhe/workspace.h"

namespace morphling::tfhe {

GadgetPlan
makeGadgetPlan(unsigned base_bits, unsigned levels)
{
    panic_if(base_bits == 0 || levels == 0 || base_bits * levels > 32,
             "bad gadget (base 2^", base_bits, ", ", levels, " levels)");
    GadgetPlan plan;
    plan.baseBits = base_bits;
    plan.levels = levels;
    plan.mask = (base_bits == 32) ? ~0u : ((1u << base_bits) - 1);
    plan.half = std::int32_t{1} << (base_bits - 1);

    // Centering offset: adding beta/2 at every level lets us subtract
    // beta/2 from each extracted digit, mapping digits from [0, beta)
    // to [-beta/2, beta/2). Rounding offset: half an ulp of the last
    // level converts the truncation of the undecomposed tail into
    // round-to-nearest.
    plan.offset = 0;
    for (unsigned j = 1; j <= levels; ++j)
        plan.offset += std::uint32_t{1} << (31 - (j - 1) * base_bits);
    if (levels * base_bits < 32)
        plan.offset += std::uint32_t{1} << (32 - levels * base_bits - 1);
    return plan;
}

void
gadgetDecomposeScalar(Torus32 value, unsigned base_bits, unsigned levels,
                      std::int32_t *digits)
{
    const GadgetPlan plan = makeGadgetPlan(base_bits, levels);
    const std::uint32_t shifted = value + plan.offset;
    for (unsigned j = 1; j <= levels; ++j) {
        const unsigned shift = 32 - j * base_bits;
        const std::uint32_t digit = (shifted >> shift) & plan.mask;
        digits[j - 1] = static_cast<std::int32_t>(digit) - plan.half;
    }
}

void
gadgetDecomposePlanned(const TorusPolynomial &poly, const GadgetPlan &plan,
                       std::vector<IntPolynomial> &out)
{
    const unsigned n = poly.degree();
    if (out.size() != plan.levels)
        out.resize(plan.levels);
    for (auto &p : out) {
        if (p.degree() != n)
            p = IntPolynomial(n);
    }
    gadgetDecomposePlannedInto(poly, plan, out.data());
}

void
gadgetDecomposePlannedInto(const TorusPolynomial &poly,
                           const GadgetPlan &plan, IntPolynomial *out)
{
    const unsigned n = poly.degree();
    const Torus32 *__restrict src = poly.data();
    const std::uint32_t offset = plan.offset;
    const std::uint32_t mask = plan.mask;
    const std::int32_t half = plan.half;
    // Level-outer: each pass is a straight shift/mask/subtract over the
    // polynomial, which vectorizes; the offset addition is redone per
    // level to keep the inner loop free of cross-level state.
    for (unsigned j = 0; j < plan.levels; ++j) {
        const unsigned shift = 32 - (j + 1) * plan.baseBits;
        panic_if(out[j].degree() != n, "digit polynomial degree mismatch");
        std::int32_t *__restrict dst = out[j].data();
        for (unsigned c = 0; c < n; ++c) {
            const std::uint32_t shifted = src[c] + offset;
            dst[c] = static_cast<std::int32_t>((shifted >> shift) & mask) -
                     half;
        }
    }
}

void
gadgetDecompose(const TorusPolynomial &poly, unsigned base_bits,
                unsigned levels, std::vector<IntPolynomial> &out)
{
    gadgetDecomposePlanned(poly, makeGadgetPlan(base_bits, levels), out);
}

GgswCiphertext
GgswCiphertext::encrypt(const GlweKey &key, std::int32_t message,
                        double stddev, Rng &rng)
{
    const auto &params = key.params();
    const unsigned k = key.dimension();
    const unsigned levels = params.bskLevels;
    const unsigned base_bits = params.bskBaseBits;

    GgswCiphertext out;
    out.baseBits_ = base_bits;
    out.levels_ = levels;
    out.rows_.reserve(static_cast<std::size_t>(k + 1) * levels);

    TorusPolynomial zero(params.polyDegree);
    for (unsigned u = 0; u <= k; ++u) {
        for (unsigned j = 0; j < levels; ++j) {
            GlweCiphertext row =
                GlweCiphertext::encrypt(key, zero, stddev, rng);
            // Add m * q / beta^(j+1) to the constant coefficient of
            // component u.
            const Torus32 gadget = static_cast<Torus32>(
                static_cast<std::int64_t>(message)
                << (32 - (j + 1) * base_bits));
            row.component(u)[0] += gadget;
            out.rows_.push_back(std::move(row));
        }
    }
    return out;
}

FourierGgsw
FourierGgsw::fromGgsw(const GgswCiphertext &ggsw)
{
    FourierGgsw out;
    out.baseBits_ = ggsw.baseBits();
    out.levels_ = ggsw.levels();
    out.rows_.resize(ggsw.numRows());

    panic_if(ggsw.numRows() == 0, "empty GGSW");
    const unsigned n = ggsw.row(0).polyDegree();

    // All (k+1)*l_b*(k+1) transforms of the key material go through one
    // batched forward call (torus coefficients read as signed 32-bit
    // integers, as in NegacyclicFft::forward(TorusPolynomial)).
    std::vector<const std::int32_t *> in;
    std::vector<FourierPolynomial *> spectra;
    for (unsigned r = 0; r < ggsw.numRows(); ++r) {
        const auto &row = ggsw.row(r);
        auto &dst = out.rows_[r];
        dst.resize(row.dimension() + 1);
        for (unsigned c = 0; c <= row.dimension(); ++c) {
            dst[c] = FourierPolynomial(n);
            in.push_back(reinterpret_cast<const std::int32_t *>(
                row.component(c).data()));
            spectra.push_back(&dst[c]);
        }
    }
    BatchFft::forDegree(n).forward(in.data(), spectra.data(),
                                   static_cast<unsigned>(in.size()));
    return out;
}

FourierGgsw
FourierGgsw::fromRows(unsigned base_bits, unsigned levels,
                      std::vector<std::vector<FourierPolynomial>> rows)
{
    FourierGgsw out;
    out.baseBits_ = base_bits;
    out.levels_ = levels;
    out.rows_ = std::move(rows);
    panic_if(out.rows_.empty(), "empty GGSW rows");
    return out;
}

GlweCiphertext
externalProductSchoolbook(const GgswCiphertext &ggsw,
                          const GlweCiphertext &input)
{
    const unsigned k = input.dimension();
    const unsigned n = input.polyDegree();
    const unsigned levels = ggsw.levels();
    panic_if(ggsw.numRows() != (k + 1) * levels,
             "GGSW/GLWE shape mismatch");

    GlweCiphertext result(k, n);
    std::vector<IntPolynomial> digits;
    for (unsigned u = 0; u <= k; ++u) {
        gadgetDecompose(input.component(u), ggsw.baseBits(), levels,
                        digits);
        for (unsigned j = 0; j < levels; ++j) {
            const auto &row = ggsw.row(u * levels + j);
            for (unsigned c = 0; c <= k; ++c) {
                negacyclicMulAddSchoolbook(result.component(c), digits[j],
                                           row.component(c));
            }
        }
    }
    return result;
}

namespace {

/**
 * Stage (1) of the Fourier external product: decompose all components
 * of `input` and transform each digit polynomial into ws.digitsF.
 * These (k+1)*l_b forward transforms are the ones the hardware shares
 * across a VPE row (input transform-domain reuse); on the CPU substrate
 * they go through BatchFft as a single batched call, so the SIMD tiers
 * transform several digit polynomials per pass.
 */
void
decomposeAndTransform(const FourierGgsw &ggsw, const GlweCiphertext &input,
                      BootstrapWorkspace &ws)
{
    const unsigned k = input.dimension();
    const unsigned n = input.polyDegree();
    const unsigned levels = ggsw.levels();
    panic_if(ggsw.numRows() != (k + 1) * levels,
             "GGSW/GLWE shape mismatch");
    panic_if(ggsw.numCols() != k + 1, "GGSW column count mismatch");

    ws.ensure(k, n, levels, ggsw.baseBits());
    for (unsigned u = 0; u <= k; ++u)
        gadgetDecomposePlannedInto(input.component(u), ws.plan,
                                   ws.digits.data() + u * levels);
    BatchFft::forDegree(n).forward(ws.batchDigits.data(),
                                   ws.batchDigitsF.data(),
                                   (k + 1) * levels);
}

/** Stage (2): the (k+1) transform-domain dot products of equation (2),
 *  one per output component, accumulated into ws.accF. */
void
accumulateColumns(const FourierGgsw &ggsw, BootstrapWorkspace &ws,
                  unsigned k)
{
    const unsigned rows = ggsw.numRows();
    for (unsigned c = 0; c <= k; ++c) {
        ws.accF[c].clear();
        for (unsigned r = 0; r < rows; ++r)
            ws.accF[c].mulAddAssign(ws.digitsF[r], ggsw.at(r, c));
    }
}

} // namespace

void
externalProductFourier(const FourierGgsw &ggsw, const GlweCiphertext &input,
                       GlweCiphertext &result, BootstrapWorkspace &ws)
{
    const unsigned k = input.dimension();
    const unsigned n = input.polyDegree();
    decomposeAndTransform(ggsw, input, ws);
    if (result.dimension() != k || result.polyDegree() != n)
        result = GlweCiphertext(k, n);

    // (2): one dot product per output component, accumulated entirely
    // in the transform domain (output transform-domain reuse: a single
    // inverse FFT per component, not per product). The k+1 inverse
    // transforms run as one batched call straight into `result`.
    accumulateColumns(ggsw, ws, k);
    for (unsigned c = 0; c <= k; ++c)
        ws.batchTorus[c] = &result.component(c);
    BatchFft::forDegree(n).inverseInPlace(ws.batchAccF.data(),
                                          ws.batchTorus.data(), k + 1);
}

GlweCiphertext
externalProductFourier(const FourierGgsw &ggsw, const GlweCiphertext &input)
{
    GlweCiphertext result;
    externalProductFourier(ggsw, input, result,
                           BootstrapWorkspace::forThisThread());
    return result;
}

void
cmuxRotateInPlace(const FourierGgsw &ggsw, GlweCiphertext &acc,
                  unsigned power, BootstrapWorkspace &ws)
{
    const unsigned k = acc.dimension();
    const unsigned n = acc.polyDegree();
    ws.ensure(k, n, ggsw.levels(), ggsw.baseBits());

    // Lambda = X^power * ACC - ACC ...
    for (unsigned c = 0; c <= k; ++c)
        acc.component(c).rotateDiffInto(power, ws.diff.component(c));

    // ... then ACC += BSK [.] Lambda, the external product's k+1
    // inverse FFTs batched into ws.prods and accumulated straight into
    // the rotating accumulator (no result/copy ciphertexts).
    decomposeAndTransform(ggsw, ws.diff, ws);
    accumulateColumns(ggsw, ws, k);
    for (unsigned c = 0; c <= k; ++c)
        ws.batchTorus[c] = &ws.prods[c];
    BatchFft::forDegree(n).inverseInPlace(ws.batchAccF.data(),
                                          ws.batchTorus.data(), k + 1);
    for (unsigned c = 0; c <= k; ++c)
        acc.component(c).addAssign(ws.prods[c]);
}

GlweCiphertext
cmuxRotate(const FourierGgsw &ggsw, const GlweCiphertext &input,
           unsigned power)
{
    GlweCiphertext acc = input;
    cmuxRotateInPlace(ggsw, acc, power,
                      BootstrapWorkspace::forThisThread());
    return acc;
}

} // namespace morphling::tfhe
