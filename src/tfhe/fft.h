/**
 * @file
 * Negacyclic FFT for T_q[X]/(X^N + 1).
 *
 * A polynomial product mod X^N + 1 equals pointwise multiplication of
 * the polynomials' evaluations at the odd powers of the primitive 2N-th
 * root of unity. For real coefficient sequences those 2N evaluations
 * have conjugate symmetry, so only N/2 of them are independent: the
 * whole transform folds into one complex FFT of size N/2 applied to the
 * "twisted" sequence
 *
 *     x_j = (a_j + i * a_{j + N/2}) * e^{i*pi*j/N},   j = 0..N/2-1.
 *
 * This is the folding the paper attributes to [39] (Klemsa) in Section
 * V-A3: an N-point negacyclic transform computed with a single
 * N/2-point FFT unit. The merge-split (two-polynomials-per-pass) trick
 * is a hardware throughput optimization and is modelled in src/arch; it
 * does not change the math here.
 *
 * Precision: coefficients are carried as doubles. For every parameter
 * set in params.h the accumulated products stay within (or their
 * round-off stays far below) the 53-bit mantissa, so the FFT path is
 * bit-compatible with the schoolbook path up to noise that is orders of
 * magnitude below the decryption margin (tested in tests/test_fft.cc).
 */

#ifndef MORPHLING_TFHE_FFT_H
#define MORPHLING_TFHE_FFT_H

#include <cstdint>
#include <vector>

#include "tfhe/polynomial.h"

namespace morphling::tfhe {

/**
 * A plain iterative radix-2 complex FFT of a fixed power-of-two size,
 * on split real/imaginary arrays.
 *
 * Shared by the negacyclic engine (size N/2, folded) and the
 * merge-split hardware model (size N, two real polynomials per pass).
 * The inverse is unscaled; callers divide by size().
 */
class ComplexFft
{
  public:
    explicit ComplexFft(unsigned size);

    unsigned size() const { return size_; }

    /** In-place forward transform (kernel e^{-2*pi*i*jm/size}). */
    void forward(double *re, double *im) const;

    /** In-place inverse transform, unscaled (kernel
     *  e^{+2*pi*i*jm/size}). */
    void inverse(double *re, double *im) const;

  private:
    void run(double *re, double *im, int sign) const;

    unsigned size_;
    std::vector<double> twiddleRe_, twiddleIm_;
    std::vector<unsigned> bitrev_;
};

/**
 * A polynomial in the transform domain: N/2 complex evaluations.
 *
 * Stored as separate real/imaginary arrays (structure-of-arrays), which
 * mirrors the hardware's packed 64-bit complex datapath and vectorizes
 * well.
 */
class FourierPolynomial
{
  public:
    FourierPolynomial() = default;

    /** Zero transform-domain polynomial for ring degree N. */
    explicit FourierPolynomial(unsigned ring_degree);

    unsigned ringDegree() const { return ringDegree_; }
    unsigned size() const { return static_cast<unsigned>(re_.size()); }

    double &re(unsigned i) { return re_[i]; }
    double &im(unsigned i) { return im_[i]; }
    double re(unsigned i) const { return re_[i]; }
    double im(unsigned i) const { return im_[i]; }

    /** Reset to the zero transform. */
    void clear();

    /** this += a (element-wise complex addition). */
    void addAssign(const FourierPolynomial &a);

    /** this += a * b (element-wise complex multiply-accumulate).
     *
     * This is the VPE inner loop: one call corresponds to one
     * polynomial multiplication accumulated into POLY-ACC-REG entirely
     * in the transform domain.
     */
    void mulAddAssign(const FourierPolynomial &a,
                      const FourierPolynomial &b);

  private:
    unsigned ringDegree_ = 0;
    std::vector<double> re_, im_;
};

/**
 * Forward/inverse negacyclic transform engine for one ring degree N.
 *
 * An instance carries internal scratch buffers and must not be shared
 * between threads concurrently; forDegree() returns a per-thread cached
 * instance so callers never pay table setup twice on the same thread.
 */
class NegacyclicFft
{
  public:
    explicit NegacyclicFft(unsigned ring_degree);

    unsigned ringDegree() const { return n_; }

    /** Forward transform of an integer polynomial (decomposition
     *  digits). */
    void forward(const IntPolynomial &poly, FourierPolynomial &out) const;

    /** Forward transform of a torus polynomial (coefficients read as
     *  signed 32-bit integers, the standard TFHE convention). */
    void forward(const TorusPolynomial &poly,
                 FourierPolynomial &out) const;

    /** Inverse transform with rounding back onto the discretized torus
     *  (reduction mod 2^32 happens in floating point via remainder). */
    void inverse(const FourierPolynomial &in, TorusPolynomial &out) const;

    /** Per-thread cached engine for ring degree N. */
    static const NegacyclicFft &forDegree(unsigned ring_degree);

  private:
    void forwardReal(const double *input, FourierPolynomial &out) const;

    unsigned n_;    //!< ring degree N
    unsigned half_; //!< transform size N/2

    ComplexFft fft_; //!< the N/2-point complex core
    std::vector<double> twistRe_, twistIm_; //!< e^{i*pi*j/N}

    // Scratch buffers reused across calls (mutable: transforms are
    // logically const). This is why an engine is single-thread-only;
    // forDegree() hands out one engine per thread.
    mutable std::vector<double> scratchRe_, scratchIm_;
};

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_FFT_H
