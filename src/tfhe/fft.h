/**
 * @file
 * Negacyclic FFT for T_q[X]/(X^N + 1).
 *
 * A polynomial product mod X^N + 1 equals pointwise multiplication of
 * the polynomials' evaluations at the odd powers of the primitive 2N-th
 * root of unity. For real coefficient sequences those 2N evaluations
 * have conjugate symmetry, so only N/2 of them are independent: the
 * whole transform folds into one complex FFT of size N/2 applied to the
 * "twisted" sequence
 *
 *     x_j = (a_j + i * a_{j + N/2}) * e^{i*pi*j/N},   j = 0..N/2-1.
 *
 * This is the folding the paper attributes to [39] (Klemsa) in Section
 * V-A3: an N-point negacyclic transform computed with a single
 * N/2-point FFT unit. The merge-split (two-polynomials-per-pass) trick
 * is a hardware throughput optimization and is modelled in src/arch; it
 * does not change the math here.
 *
 * Two complex FFT cores live here:
 *  - ComplexFft: the plain strided radix-2 engine with an explicit
 *    bit-reversal pass. It keeps natural input/output ordering, is used
 *    by the merge-split hardware model (src/arch/functional/ms_fft) and
 *    serves as the reference the radix-4 engine is tested against.
 *  - Radix4Fft: the production core behind NegacyclicFft. Forward is
 *    decimation-in-frequency, inverse decimation-in-time, so no
 *    bit-reversal pass is ever executed; the spectrum lives in the
 *    engine's base-4 digit-reversed order. That order is an internal
 *    convention of the transform domain: every FourierPolynomial is
 *    produced and consumed with the same permutation, and pointwise
 *    multiply/accumulate commutes with any fixed permutation, so
 *    nothing outside the engine ever needs to undo it.
 *
 * On top of NegacyclicFft sits BatchFft, the SIMD batch engine: it
 * transforms W polynomials per call (W = lane width of the dispatched
 * kernel tier, see fft_dispatch.h) with their coefficients interleaved
 * across vector lanes, so every butterfly — including the small-span
 * stages that defeat within-polynomial vectorization — runs at full
 * vector width. All tiers are bit-identical to the scalar engine; the
 * bootstrap pipeline routes all l*(k+1) per-CMux transforms through it.
 *
 * Precision: coefficients are carried as doubles. For every parameter
 * set in params.h the accumulated products stay within (or their
 * round-off stays far below) the 53-bit mantissa, so the FFT path is
 * bit-compatible with the schoolbook path up to noise that is orders of
 * magnitude below the decryption margin (tested in tests/test_fft.cc
 * and tests/test_workspace.cc).
 */

#ifndef MORPHLING_TFHE_FFT_H
#define MORPHLING_TFHE_FFT_H

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "tfhe/fft_kernels.h"
#include "tfhe/polynomial.h"

namespace morphling::tfhe {

class BatchFft;

namespace detail {
struct KernelLadder;
}

/**
 * A plain iterative radix-2 complex FFT of a fixed power-of-two size,
 * on split real/imaginary arrays, with natural input/output ordering.
 *
 * Used by the merge-split hardware model (size N, two real polynomials
 * per pass) and as the ground-truth reference for Radix4Fft. The
 * inverse is unscaled; callers divide by size().
 */
class ComplexFft
{
  public:
    explicit ComplexFft(unsigned size);

    unsigned size() const { return size_; }

    /** In-place forward transform (kernel e^{-2*pi*i*jm/size}). */
    void forward(double *re, double *im) const;

    /** In-place inverse transform, unscaled (kernel
     *  e^{+2*pi*i*jm/size}). */
    void inverse(double *re, double *im) const;

  private:
    void run(double *re, double *im, int sign) const;

    unsigned size_;
    std::vector<double> twiddleRe_, twiddleIm_;
    std::vector<unsigned> bitrev_;
};

/**
 * The production complex FFT core: iterative radix-4 with one trailing
 * radix-2 stage when log2(size) is odd.
 *
 * Forward is decimation-in-frequency (natural input, digit-reversed
 * output), inverse is the exact algorithmic transpose
 * (decimation-in-time: digit-reversed input, natural output), so the
 * bit-reversal permutation pass of the classic radix-2 engine is gone
 * entirely. Twiddle factors are stored per stage as six contiguous
 * streams (re/im of w, w^2, w^3 indexed by butterfly position), which
 * turns every butterfly loop into straight-line code over unit-stride
 * arrays that the compiler auto-vectorizes.
 *
 * The inverse is unscaled: inversePermuted(forwardPermuted(x)) ==
 * size() * x.
 */
class Radix4Fft
{
  public:
    explicit Radix4Fft(unsigned size);

    unsigned size() const { return size_; }

    /** Number of radix-4 stages (stage 0 has span size()). */
    unsigned numStages() const
    {
        return static_cast<unsigned>(stageLen_.size());
    }

    /** True when a final twiddle-free radix-2 stage follows the radix-4
     *  stages (log2(size) odd). */
    bool hasRadix2Tail() const { return radix2Tail_; }

    /** In-place forward DIF transform; output digit-reversed. */
    void forwardPermuted(double *re, double *im) const;

    /** In-place unscaled inverse DIT transform; input digit-reversed,
     *  output natural. */
    void inversePermuted(double *re, double *im) const;

    /** Run the forward stages starting at `first_stage` (used by
     *  NegacyclicFft, which fuses stage 0 with the fold+twist load). */
    void forwardStagesFrom(unsigned first_stage, double *re,
                           double *im) const;

    /** Run the inverse stages (radix-2 tail first, then radix-4 stages
     *  from the smallest span) stopping before `stop_stage` (used by
     *  NegacyclicFft, which fuses stage 0 with untwist+round). */
    void inverseStagesDownTo(unsigned stop_stage, double *re,
                             double *im) const;

    /** Stage butterfly span (stageLen(0) == size()). */
    unsigned stageLen(unsigned stage) const { return stageLen_[stage]; }

    /** Stage twiddles: six blocks of stageLen(stage)/4 doubles each —
     *  w re, w im, w^2 re, w^2 im, w^3 re, w^3 im. */
    const double *stageTwiddles(unsigned stage) const
    {
        return stageTw_[stage].data();
    }

  private:
    void radix4ForwardStage(unsigned stage, double *re, double *im) const;
    void radix4InverseStage(unsigned stage, double *re, double *im) const;
    void radix2Stage(double *re, double *im) const;

    unsigned size_;
    std::vector<unsigned> stageLen_;        //!< radix-4 spans, descending
    std::vector<std::vector<double>> stageTw_; //!< per-stage twiddles
    bool radix2Tail_ = false;
};

/**
 * A polynomial in the transform domain: N/2 complex evaluations, in the
 * digit-reversed order of the Radix4Fft engine for ring degree N.
 *
 * Stored as separate real/imaginary arrays (structure-of-arrays), which
 * mirrors the hardware's packed 64-bit complex datapath and vectorizes
 * well. Both arrays are 64-byte aligned (kSimdAlignment) so the SIMD
 * kernel tiers can stream them with full-width vector accesses that
 * never straddle a cache line.
 */
class FourierPolynomial
{
  public:
    FourierPolynomial() = default;

    /** Zero transform-domain polynomial for ring degree N. */
    explicit FourierPolynomial(unsigned ring_degree);

    unsigned ringDegree() const { return ringDegree_; }
    unsigned size() const { return static_cast<unsigned>(re_.size()); }

    double &re(unsigned i) { return re_[i]; }
    double &im(unsigned i) { return im_[i]; }
    double re(unsigned i) const { return re_[i]; }
    double im(unsigned i) const { return im_[i]; }

    double *reData() { return re_.data(); }
    double *imData() { return im_.data(); }
    const double *reData() const { return re_.data(); }
    const double *imData() const { return im_.data(); }

    /** Reset to the zero transform. */
    void clear();

    /** this += a (element-wise complex addition). Routed through the
     *  dispatched SIMD kernel tier. */
    void addAssign(const FourierPolynomial &a);

    /** this += a * b (element-wise complex multiply-accumulate).
     *
     * This is the VPE inner loop: one call corresponds to one
     * polynomial multiplication accumulated into POLY-ACC-REG entirely
     * in the transform domain. Routed through the dispatched SIMD
     * kernel tier.
     */
    void mulAddAssign(const FourierPolynomial &a,
                      const FourierPolynomial &b);

  private:
    unsigned ringDegree_ = 0;
    AlignedVector<double> re_, im_;
};

/**
 * Forward/inverse negacyclic transform engine for one ring degree N,
 * built on the radix-4 core.
 *
 * The fold+twist load is fused into the first forward butterfly stage
 * and the untwist+scale+round store into the last inverse stage, so a
 * transform makes exactly log4(N/2) + 1 passes over the data and
 * performs no heap allocation: forward writes straight into the
 * caller's FourierPolynomial and runs in place there.
 *
 * An instance carries internal scratch buffers (used only by the
 * const-input inverse) and must not be shared between threads
 * concurrently; forDegree() returns a per-thread cached instance so
 * callers never pay table setup twice on the same thread.
 */
class NegacyclicFft
{
  public:
    explicit NegacyclicFft(unsigned ring_degree);

    unsigned ringDegree() const { return n_; }

    /** Forward transform of an integer polynomial (decomposition
     *  digits). Allocation-free. */
    void forward(const IntPolynomial &poly, FourierPolynomial &out) const;

    /** Forward transform of a torus polynomial (coefficients read as
     *  signed 32-bit integers, the standard TFHE convention).
     *  Allocation-free. */
    void forward(const TorusPolynomial &poly,
                 FourierPolynomial &out) const;

    /** Inverse transform with rounding back onto the discretized torus
     *  (reduction mod 2^32). Preserves `in`; uses the engine's mutable
     *  scratch, which is why an engine is single-thread-only. */
    void inverse(const FourierPolynomial &in, TorusPolynomial &out) const;

    /** Inverse transform that runs in place inside `in`, destroying its
     *  contents. The hot-path variant: no scratch copy at all. */
    void inverseInPlace(FourierPolynomial &in, TorusPolynomial &out) const;

    /** Per-thread cached engine for ring degree N. */
    static const NegacyclicFft &forDegree(unsigned ring_degree);

  private:
    /** Fold + twist + first forward butterfly stage in one pass over
     *  the input (read as signed 32-bit coefficients). */
    void forwardFromInt(const std::int32_t *input,
                        FourierPolynomial &out) const;

    /** Last inverse butterfly stage + untwist + scale + round in one
     *  pass; consumes re/im (digit-reversed spectrum, later stages
     *  already applied). */
    void inverseCore(double *re, double *im, TorusPolynomial &out) const;

    unsigned n_;    //!< ring degree N
    unsigned half_; //!< transform size N/2

    Radix4Fft fft_; //!< the N/2-point complex core
    AlignedVector<double> twistRe_, twistIm_; //!< e^{i*pi*j/N}

    // Scratch reused by the const-preserving inverse (mutable:
    // transforms are logically const). This is why an engine is
    // single-thread-only; forDegree() hands out one engine per thread.
    mutable AlignedVector<double> scratchRe_, scratchIm_;

    friend class BatchFft; //!< shares the tables for batched transforms
};

/**
 * SIMD batch front end over NegacyclicFft: transforms up to
 * detail::kMaxFftLanes polynomials per kernel call by interleaving
 * their coefficients across vector lanes (see fft_kernels.h).
 *
 * The kernel tier (scalar / AVX2 / AVX-512 / NEON) is resolved by
 * fft_dispatch.h at first use and acts as a width *ceiling*: whole
 * groups of W = tier lane width go through the widest kernel, and a
 * short group descends the dispatch ladder to the widest narrower
 * kernel it can still fill (e.g. 4 transforms on an AVX-512 host use
 * the AVX2 kernel rather than falling back to scalar). A trailing
 * group of >= 2 polynomials too small for even the narrowest vector
 * kernel runs through it anyway with idle lanes re-transforming the
 * first polynomial into a shared throwaway buffer — cheaper than
 * per-polynomial scalar calls. Lone polynomials, the scalar tier, and
 * transforms too small to interleave (N/2 % W != 0) take the scalar
 * engine. All paths are bit-identical, so batching and ladder descent
 * never change results.
 *
 * Allocation-free after construction: the interleaved lane scratch is
 * preallocated at the widest tier. Instances carry mutable scratch and
 * are single-thread-only, like NegacyclicFft; forDegree() returns a
 * per-thread cached instance.
 */
class BatchFft
{
  public:
    explicit BatchFft(unsigned ring_degree);

    BatchFft(const BatchFft &) = delete;
    BatchFft &operator=(const BatchFft &) = delete;

    unsigned ringDegree() const { return fft_.ringDegree(); }

    /** The wrapped single-polynomial engine (scalar fallback path). */
    const NegacyclicFft &engine() const { return fft_; }

    /** Batched forward transform of `count` coefficient arrays (read as
     *  signed 32-bit integers) into `count` spectra. */
    void forward(const std::int32_t *const *in,
                 FourierPolynomial *const *out, unsigned count) const;

    /** Batched forward transform of `count` integer polynomials. */
    void forward(const IntPolynomial *const *in,
                 FourierPolynomial *const *out, unsigned count) const;

    /** Batched inverse + round of `count` spectra into `count` torus
     *  polynomials, destroying the spectra (hot-path contract of
     *  NegacyclicFft::inverseInPlace). */
    void inverseInPlace(FourierPolynomial *const *in,
                        TorusPolynomial *const *out, unsigned count) const;

    /** Per-thread cached engine for ring degree N. */
    static const BatchFft &forDegree(unsigned ring_degree);

  private:
    /** Widest ladder rung usable for a group of `remaining` transforms,
     *  or nullptr when the scalar engine is the right path. */
    const detail::BatchKernels *
    pickKernel(const detail::KernelLadder &ladder,
               unsigned remaining) const;

    NegacyclicFft fft_;                 //!< owns all transform tables
    std::vector<unsigned> stageLen_;    //!< radix-4 spans (view backing)
    std::vector<const double *> stageTw_; //!< per-stage twiddle blocks
    detail::NegacyclicView view_;       //!< borrowed view for kernels

    // Interleaved lane scratch, sized for the widest tier; mutable for
    // the same logically-const reason as NegacyclicFft's scratch.
    mutable AlignedVector<double> laneRe_, laneIm_;
    // Shared throwaway outputs for idle padded lanes of a short group.
    mutable AlignedVector<double> padRe_, padIm_;
    mutable AlignedVector<Torus32> padTorus_;
};

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_FFT_H
