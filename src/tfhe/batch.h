/**
 * @file
 * Batched bootstrapping on the host CPU.
 *
 * Bootstraps within a batch are independent — the property Morphling's
 * scheduler exploits with 64-ciphertext superbatches, and the property
 * that lets a multicore CPU parallelize them. This module provides the
 * unified batch entry point (one function, execution shaped by
 * BatchOptions), an EvaluationKeys overload for the server side of a
 * deployment split, and a measured parallel-efficiency probe that
 * grounds the CPU cost model's efficiency constant in reality instead
 * of a guess.
 *
 * Thread safety: key material is read-only during bootstrapping and
 * the FFT engines are per-thread (NegacyclicFft::forDegree), so the
 * parallel path needs no locking.
 */

#ifndef MORPHLING_TFHE_BATCH_H
#define MORPHLING_TFHE_BATCH_H

#include <cstdint>
#include <vector>

#include "tfhe/bootstrap.h"
#include "tfhe/serialize.h"

namespace morphling::tfhe {

/**
 * Execution knobs of the unified batch-bootstrap entry point.
 *
 * The default is the conservative sequential path; set threads to 0 to
 * use every hardware thread.
 */
struct BatchOptions
{
    /** Worker threads: 1 = sequential, 0 = hardware concurrency. */
    unsigned threads = 1;

    /**
     * Audit the LUT against the analytic noise model before running:
     * warn() when the predicted input-side noise margin for a LUT over
     * lut.size() messages falls below minSlotSigmas (a decode failure
     * is then no longer negligible). Costs a handful of flops once per
     * batch, nothing per ciphertext.
     */
    bool checkNoise = false;

    /** Margin threshold for checkNoise; > 6 is practically
     *  error-free. */
    double minSlotSigmas = 4.0;
};

/**
 * Audit a LUT against the analytic noise model per
 * BatchOptions::checkNoise (warn() when the slot margin is thin).
 * No-op when opts.checkNoise is false or the LUT is empty. Shared by
 * the batch path and the exec::FunctionalBackend so both entry points
 * apply the same audit.
 */
void auditBatchLut(const TfheParams &params,
                   const std::vector<Torus32> &lut,
                   const BatchOptions &opts);

/**
 * Programmable-bootstrap every ciphertext with the same LUT. Results
 * are in input order and independent of opts.threads.
 */
std::vector<LweCiphertext>
batchBootstrap(const KeySet &keys,
               const std::vector<LweCiphertext> &inputs,
               const std::vector<Torus32> &lut,
               const BatchOptions &opts = {});

/**
 * Server-side batch bootstrap: same semantics, using only evaluation
 * keys (no secret material). This is the hot path the
 * service::BootstrapService worker pool runs.
 */
std::vector<LweCiphertext>
batchBootstrap(const EvaluationKeys &keys,
               const std::vector<LweCiphertext> &inputs,
               const std::vector<Torus32> &lut,
               const BatchOptions &opts = {});

/**
 * Sign-bootstrap every ciphertext back to +-mu — the batched form of
 * signBootstrap and the primitive behind boolean gate circuits. Uses
 * the constant test polynomial (NOT a staircase LUT: gates need the
 * whole negacyclic ring mapped to one magnitude, which no
 * buildTestPolynomial vector can express). Same batching/threading
 * semantics as batchBootstrap; also the reference the co-simulator
 * checks sign-LUT jobs (exec::Job::sign) against.
 */
std::vector<LweCiphertext>
batchSignBootstrap(const EvaluationKeys &keys,
                   const std::vector<LweCiphertext> &inputs, Torus32 mu,
                   const BatchOptions &opts = {});

/** Outcome of the parallel-efficiency probe. */
struct ParallelEfficiency
{
    unsigned threads = 0;
    double sequentialSeconds = 0;
    double parallelSeconds = 0;

    /** speedup / threads, in (0, 1]. */
    double
    efficiency() const
    {
        if (parallelSeconds <= 0 || threads == 0)
            return 0;
        return sequentialSeconds / parallelSeconds / threads;
    }
};

/**
 * Measure multicore scaling of this library's bootstrap on the current
 * host: run `count` bootstraps sequentially and with `threads`
 * workers.
 */
ParallelEfficiency measureParallelEfficiency(const KeySet &keys,
                                             unsigned count,
                                             unsigned threads);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_BATCH_H
