/**
 * @file
 * Batched bootstrapping on the host CPU.
 *
 * Bootstraps within a batch are independent — the property Morphling's
 * scheduler exploits with 64-ciphertext superbatches, and the property
 * that lets a multicore CPU parallelize them. This module provides the
 * batch API (sequential and std::thread-parallel) and a measured
 * parallel-efficiency probe that grounds the CPU cost model's
 * efficiency constant in reality instead of a guess.
 *
 * Thread safety: KeySet is read-only during bootstrapping and the FFT
 * engines are per-thread (NegacyclicFft::forDegree), so the parallel
 * path needs no locking.
 */

#ifndef MORPHLING_TFHE_BATCH_H
#define MORPHLING_TFHE_BATCH_H

#include <cstdint>
#include <vector>

#include "tfhe/bootstrap.h"

namespace morphling::tfhe {

/** Programmable-bootstrap every ciphertext with the same LUT,
 *  sequentially. */
std::vector<LweCiphertext>
batchBootstrap(const KeySet &keys,
               const std::vector<LweCiphertext> &inputs,
               const std::vector<Torus32> &lut);

/**
 * Programmable-bootstrap every ciphertext with the same LUT across
 * `threads` worker threads (0 = hardware concurrency). Results are in
 * input order and identical to the sequential path.
 */
std::vector<LweCiphertext>
parallelBatchBootstrap(const KeySet &keys,
                       const std::vector<LweCiphertext> &inputs,
                       const std::vector<Torus32> &lut,
                       unsigned threads = 0);

/** Outcome of the parallel-efficiency probe. */
struct ParallelEfficiency
{
    unsigned threads = 0;
    double sequentialSeconds = 0;
    double parallelSeconds = 0;

    /** speedup / threads, in (0, 1]. */
    double
    efficiency() const
    {
        if (parallelSeconds <= 0 || threads == 0)
            return 0;
        return sequentialSeconds / parallelSeconds / threads;
    }
};

/**
 * Measure multicore scaling of this library's bootstrap on the current
 * host: run `count` bootstraps sequentially and with `threads`
 * workers.
 */
ParallelEfficiency measureParallelEfficiency(const KeySet &keys,
                                             unsigned count,
                                             unsigned threads);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_BATCH_H
