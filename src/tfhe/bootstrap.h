/**
 * @file
 * Programmable bootstrapping (Algorithm 1):
 * mod-switch -> blind rotation (n external products) -> sample
 * extraction -> key switching.
 *
 * Besides the end-to-end entry points this header exposes each stage
 * individually; the accelerator model, the op-count study (Figure 1)
 * and the tests all reuse the same stage functions.
 */

#ifndef MORPHLING_TFHE_BOOTSTRAP_H
#define MORPHLING_TFHE_BOOTSTRAP_H

#include <cstdint>
#include <vector>

#include "tfhe/keyset.h"
#include "tfhe/workspace.h"

namespace morphling::tfhe {

/**
 * Modulus-switch every element of an LWE ciphertext from q = 2^32 to
 * 2N (Algorithm 1, line 1). Element i of the result is
 * round(c_i * 2N / q) in [0, 2N); the body comes last.
 */
std::vector<std::uint32_t> modSwitch(const LweCiphertext &ct,
                                     unsigned poly_degree);

/** modSwitch into an existing buffer (allocation-free when warm). */
void modSwitchInto(const LweCiphertext &ct, unsigned poly_degree,
                   std::vector<std::uint32_t> &out);

/**
 * Build the test polynomial for a LUT over a p-value message space with
 * one bit of padding (messages encoded at m / (2p), phases in
 * [0, 1/2)).
 *
 * Coefficient j holds lut[round(j*p/N)]; the top half-slot holds
 * -lut[0] so that a message 0 with slightly negative noise — whose
 * switched phase wraps to just below 2N — still resolves to lut[0]
 * after the negacyclic wrap.
 */
TorusPolynomial buildTestPolynomial(unsigned poly_degree,
                                    const std::vector<Torus32> &lut);

/** buildTestPolynomial into an existing polynomial (allocation-free
 *  when already at the right degree). */
void buildTestPolynomialInto(unsigned poly_degree,
                             const std::vector<Torus32> &lut,
                             TorusPolynomial &out);

/** Constant test polynomial (every coefficient mu): the sign-extractor
 *  used by gate bootstrapping. */
TorusPolynomial constantTestPolynomial(unsigned poly_degree, Torus32 mu);

/**
 * Blind rotation (Algorithm 1, lines 2-4): starting from the trivial
 * accumulator X^(2N - b~) * (0,..,0,TP), fold in one CMux per LWE mask.
 *
 * @param switched mod-switched ciphertext (masks then body), values in
 *                 [0, 2N)
 */
GlweCiphertext blindRotate(const BootstrapKey &bsk,
                           const TorusPolynomial &test_poly,
                           const std::vector<std::uint32_t> &switched);

/**
 * Workspace blind rotation: the accumulator is (re)built inside `acc`
 * (rotate-on-construct: the test polynomial is rotated directly into
 * the accumulator body, no trivial-then-rotate copy) and every CMux
 * runs in place through `ws`. Allocation-free when warm.
 */
void blindRotate(const BootstrapKey &bsk,
                 const TorusPolynomial &test_poly,
                 const std::vector<std::uint32_t> &switched,
                 GlweCiphertext &acc, BootstrapWorkspace &ws);

/**
 * Full workspace bootstrap from evaluation material: mod-switch, blind
 * rotation, sample extraction and key switching, every intermediate
 * taken from `ws`. This is the zero-allocation hot path under all
 * batch/service entry points; `out` gets the key-switched result.
 */
void bootstrapInto(const BootstrapKey &bsk, const KeySwitchKey &ksk,
                   const TorusPolynomial &test_poly,
                   const LweCiphertext &ct, LweCiphertext &out,
                   BootstrapWorkspace &ws);

/**
 * Bootstrap with an explicit test polynomial; output remains under the
 * *extracted* key s' (no key switch). Building block for the gate and
 * programmable entry points.
 */
LweCiphertext bootstrapNoKeySwitch(const KeySet &keys,
                                   const LweCiphertext &ct,
                                   const TorusPolynomial &test_poly);

/**
 * Full programmable bootstrapping of a padded p-value message: returns
 * LWE_s(lut[m]) for input LWE_s(m / (2p)). lut values are raw torus
 * elements, so any output encoding (including a different p) works.
 */
LweCiphertext programmableBootstrap(const KeySet &keys,
                                    const LweCiphertext &ct,
                                    const std::vector<Torus32> &lut);

/**
 * Sign bootstrap: returns LWE_s(+mu) when the phase of ct lies in
 * (0, 1/2) and LWE_s(-mu) when it lies in (-1/2, 0). The primitive
 * behind all two-input boolean gates.
 */
LweCiphertext signBootstrap(const KeySet &keys, const LweCiphertext &ct,
                            Torus32 mu);

/**
 * Multi-LUT test polynomial: packs nu look-up tables (all over the
 * same p-value padded space) into one test polynomial by spacing the
 * functions N/(p*nu) coefficients apart inside each message slot.
 * Extraction offset i*N/(p*nu) then reads f_i — several functions from
 * ONE blind rotation, at the price of a nu-times smaller noise margin.
 * (The transform-domain-reuse idea applied at the algorithm level: the
 * expensive rotation is shared, only the cheap extractions multiply.)
 */
TorusPolynomial
buildMultiTestPolynomial(unsigned poly_degree,
                         const std::vector<std::vector<Torus32>> &luts);

/**
 * Evaluate several LUTs with a single blind rotation: returns one
 * ciphertext per LUT, output i = luts[i][m]. All LUTs share the
 * message space; p * nu must divide N with spacing >= 2.
 */
std::vector<LweCiphertext>
multiLutBootstrap(const KeySet &keys, const LweCiphertext &ct,
                  const std::vector<std::vector<Torus32>> &luts);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_BOOTSTRAP_H
