/**
 * @file
 * TFHE parameter sets.
 *
 * The dimensional parameters (N, n, k, l_b, security level) of the named
 * sets I-IV and A-C follow Table III of the paper. The paper does not
 * list decomposition bases, key-switching levels (except Figure 1's
 * l_k = 9) or noise standard deviations; we fill those from the
 * reference TFHE implementations (TFHE-lib / Concrete) the paper builds
 * on, chosen so that (a) functional bootstrapping round-trips correctly
 * and (b) the double-precision FFT error stays inside the noise budget.
 * We do not re-derive security estimates; the lambda column is carried
 * over from the paper.
 */

#ifndef MORPHLING_TFHE_PARAMS_H
#define MORPHLING_TFHE_PARAMS_H

#include <cstdint>
#include <string>
#include <vector>

namespace morphling::tfhe {

/**
 * One complete TFHE parameter set.
 *
 * All standard deviations are expressed as fractions of the torus.
 */
struct TfheParams
{
    std::string name;        //!< e.g. "I", "B", "F128"
    unsigned polyDegree;     //!< N, degree of the GLWE ring polynomials
    unsigned lweDimension;   //!< n, dimension of LWE ciphertexts
    unsigned glweDimension;  //!< k, dimension of GLWE ciphertexts
    unsigned bskLevels;      //!< l_b, levels of the bootstrapping key
    unsigned bskBaseBits;    //!< log2(beta) for the bootstrapping key
    unsigned kskLevels;      //!< l_k, levels of the key-switching key
    unsigned kskBaseBits;    //!< log2(base) for the key-switching key
    double lweNoiseStd;      //!< stddev of fresh LWE / KSK noise
    double glweNoiseStd;     //!< stddev of fresh GLWE / BSK noise
    unsigned securityBits;   //!< lambda as reported by the paper

    /** N * (k+1): torus words per GLWE ciphertext. */
    std::uint64_t glweWords() const;

    /** kN: dimension of the extracted LWE ciphertext (GLWE key,
     *  flattened). */
    std::uint64_t extractedLweDimension() const;

    /** Number of ring polynomials in one GGSW ciphertext:
     *  (k+1) * l_b rows of (k+1) polynomials. */
    std::uint64_t polysPerGgsw() const;

    /** Bytes of one bootstrapping key (n GGSW ciphertexts, 32-bit
     *  coefficients). */
    std::uint64_t bskBytes() const;

    /** Bytes of one bootstrapping key stored in the transform domain
     *  (N/2 complex values of 2*32 bits per polynomial), the format
     *  Morphling keeps in the Private-A2 buffer. */
    std::uint64_t bskTransformBytes() const;

    /** Bytes of one key-switching key: kN * l_k LWE ciphertexts of
     *  (n+1) 32-bit words. */
    std::uint64_t kskBytes() const;

    /** Bytes of one GLWE (ACC) ciphertext. */
    std::uint64_t accBytes() const;

    /** log2(2N), the modulus-switching target width. */
    unsigned log2TwoN() const;

    /** Human-readable one-line summary. */
    std::string summary() const;

    /** Sanity-check structural invariants (powers of two, level/base
     *  fits in 32 bits, ...); fatal() on violation. */
    void validate() const;

    /** First violated structural invariant, or nullptr when the set is
     *  well-formed — the non-fatal face of validate(), for code
     *  decoding untrusted parameter blobs (tryLoadEvaluationKeys). */
    const char *firstProblem() const;
};

/** Named parameter sets from Table III (I-IV with k = 1; A-C). */
const TfheParams &paramsSetI();
const TfheParams &paramsSetII();
const TfheParams &paramsSetIII();
const TfheParams &paramsSetIV();
const TfheParams &paramsSetA();
const TfheParams &paramsSetB();
const TfheParams &paramsSetC();

/** The 128-bit set used by Figure 1's breakdown:
 *  (N, n, k, l_b, l_k) = (1024, 481, 2, 4, 9). */
const TfheParams &paramsFig1();

/** Reduced-size set for fast unit tests (not in the paper). */
const TfheParams &paramsTest();

/** All named sets, in presentation order. */
const std::vector<TfheParams> &allParamSets();

/** Look up a named set; fatal() if the name is unknown. */
const TfheParams &paramsByName(const std::string &name);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_PARAMS_H
