/**
 * @file
 * Polynomials over the negacyclic ring T_q[X]/(X^N + 1) and
 * Z[X]/(X^N + 1).
 *
 * Every polynomial type in TFHE (GLWE masks/bodies, decomposed digits,
 * GLWE secret keys) is an element of one of these two rings. The modulus
 * polynomial X^N + 1 makes multiplication *negacyclic*: coefficients
 * that wrap past degree N-1 come back negated, which is why rotations by
 * X^a flip signs (the behaviour the Private-A1 rotator implements in
 * hardware).
 */

#ifndef MORPHLING_TFHE_POLYNOMIAL_H
#define MORPHLING_TFHE_POLYNOMIAL_H

#include <cstdint>
#include <vector>

#include "tfhe/torus.h"

namespace morphling::tfhe {

/**
 * A polynomial with coefficients of type T, reduced mod X^N + 1.
 *
 * T is Torus32 for ciphertext polynomials and int32_t for integer
 * polynomials (decomposition digits, binary secret keys). Arithmetic on
 * Torus32 wraps mod 2^32 by construction.
 */
template <typename T>
class Polynomial
{
  public:
    Polynomial() = default;

    /** Zero polynomial of the given degree bound N. */
    explicit Polynomial(unsigned degree) : coeffs_(degree, T{0}) {}

    /** Construct from explicit coefficients (degree = size). */
    explicit Polynomial(std::vector<T> coeffs)
        : coeffs_(std::move(coeffs))
    {
    }

    unsigned degree() const
    {
        return static_cast<unsigned>(coeffs_.size());
    }

    T &operator[](unsigned i) { return coeffs_[i]; }
    const T &operator[](unsigned i) const { return coeffs_[i]; }

    const std::vector<T> &coefficients() const { return coeffs_; }
    T *data() { return coeffs_.data(); }
    const T *data() const { return coeffs_.data(); }

    /** Reset all coefficients to zero. */
    void clear();

    /** this += other (element-wise, wrapping for torus). */
    void addAssign(const Polynomial &other);

    /** this -= other. */
    void subAssign(const Polynomial &other);

    /** Negate all coefficients in place. */
    void negate();

    /**
     * Multiply by the monomial X^power, power in [0, 2N).
     *
     * Because X^N = -1 in the ring, a rotation by power >= N is the
     * negation of a rotation by power - N, and coefficients shifted past
     * the top wrap around with flipped sign. This is exactly the
     * operation the double-pointer rotator performs (Section V-C).
     */
    Polynomial mulByXPower(unsigned power) const;

    /** out = X^power * this, written into an existing polynomial of the
     *  same degree: the allocation-free rotation of the hot path.
     *  `out` must not alias this. */
    void mulByXPowerInto(unsigned power, Polynomial &out) const;

    /** In-place rotation via a caller-provided scratch polynomial (the
     *  coefficient vectors are swapped, so neither side allocates when
     *  both are already at the right degree). */
    void mulByXPowerInPlace(unsigned power, Polynomial &scratch);

    /** r = X^power * this - this, the rotate-and-subtract that feeds
     *  each external product (Algorithm 1, line 4). */
    Polynomial rotateDiff(unsigned power) const;

    /** out = X^power * this - this without allocating. `out` must not
     *  alias this. */
    void rotateDiffInto(unsigned power, Polynomial &out) const;

    bool operator==(const Polynomial &other) const = default;

  private:
    std::vector<T> coeffs_;
};

using TorusPolynomial = Polynomial<Torus32>;
using IntPolynomial = Polynomial<std::int32_t>;

/**
 * Reference negacyclic product accumulate: acc += a * b mod X^N + 1,
 * computed with the O(N^2) schoolbook method.
 *
 * Serves as the ground truth the FFT path is tested against, and as the
 * transform-free baseline in the op-count study.
 */
void negacyclicMulAddSchoolbook(TorusPolynomial &acc,
                                const IntPolynomial &a,
                                const TorusPolynomial &b);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_POLYNOMIAL_H
