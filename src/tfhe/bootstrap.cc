#include "bootstrap.h"

#include "common/bits.h"
#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace morphling::tfhe {

void
modSwitchInto(const LweCiphertext &ct, unsigned poly_degree,
              std::vector<std::uint32_t> &out)
{
    const unsigned log2_two_n = log2Floor(poly_degree) + 1;
    out.resize(ct.dimension() + 1);
    for (unsigned i = 0; i < ct.dimension(); ++i)
        out[i] = modSwitchTorus32(ct.mask(i), log2_two_n) %
                 (2 * poly_degree);
    out[ct.dimension()] =
        modSwitchTorus32(ct.body(), log2_two_n) % (2 * poly_degree);
}

std::vector<std::uint32_t>
modSwitch(const LweCiphertext &ct, unsigned poly_degree)
{
    std::vector<std::uint32_t> out;
    modSwitchInto(ct, poly_degree, out);
    return out;
}

void
buildTestPolynomialInto(unsigned poly_degree,
                        const std::vector<Torus32> &lut,
                        TorusPolynomial &out)
{
    const auto space = static_cast<std::uint32_t>(lut.size());
    panic_if(space == 0, "empty LUT");
    panic_if(2 * space > poly_degree,
             "LUT of ", space, " entries does not fit N=", poly_degree);

    if (out.degree() != poly_degree)
        out = TorusPolynomial(poly_degree);
    for (unsigned j = 0; j < poly_degree; ++j) {
        // v = round(j * p / N); v == p marks the top half-slot, which
        // is reached (negated by the X^N = -1 wrap) by message 0 with
        // negative noise.
        const std::uint32_t v =
            (2u * j * space + poly_degree) / (2u * poly_degree);
        out[j] = v < space ? lut[v] : (0 - lut[0]);
    }
}

TorusPolynomial
buildTestPolynomial(unsigned poly_degree, const std::vector<Torus32> &lut)
{
    TorusPolynomial tp(poly_degree);
    buildTestPolynomialInto(poly_degree, lut, tp);
    return tp;
}

TorusPolynomial
constantTestPolynomial(unsigned poly_degree, Torus32 mu)
{
    TorusPolynomial tp(poly_degree);
    for (unsigned j = 0; j < poly_degree; ++j)
        tp[j] = mu;
    return tp;
}

void
blindRotate(const BootstrapKey &bsk, const TorusPolynomial &test_poly,
            const std::vector<std::uint32_t> &switched,
            GlweCiphertext &acc, BootstrapWorkspace &ws)
{
    const unsigned n = static_cast<unsigned>(switched.size()) - 1;
    panic_if(bsk.size() != n, "BSK has ", bsk.size(), " entries, need ",
             n);
    const unsigned poly_degree = test_poly.degree();
    const unsigned two_n = 2 * poly_degree;
    const unsigned k = bsk.entry(0).numCols() - 1;

    // ACC_0 = X^(-b~) * (0,..,0,TP). Negative powers fold into
    // [0, 2N) because X^(2N) = 1; the test polynomial is rotated
    // straight into the accumulator body (rotate-on-construct).
    if (acc.dimension() != k || acc.polyDegree() != poly_degree)
        acc = GlweCiphertext(k, poly_degree);
    for (unsigned c = 0; c < k; ++c)
        acc.component(c).clear();
    const unsigned b_tilde = switched[n] % two_n;
    test_poly.mulByXPowerInto((two_n - b_tilde) % two_n, acc.body());

    for (unsigned i = 0; i < n; ++i) {
        const unsigned a_tilde = switched[i] % two_n;
        if (a_tilde == 0)
            continue; // X^0 rotation: CMux output equals its input.
        MORPHLING_SPAN_FINE("tfhe", "cmux");
        cmuxRotateInPlace(bsk.entry(i), acc, a_tilde, ws);
    }
}

GlweCiphertext
blindRotate(const BootstrapKey &bsk, const TorusPolynomial &test_poly,
            const std::vector<std::uint32_t> &switched)
{
    GlweCiphertext acc;
    blindRotate(bsk, test_poly, switched, acc,
                BootstrapWorkspace::forThisThread());
    return acc;
}

void
bootstrapInto(const BootstrapKey &bsk, const KeySwitchKey &ksk,
              const TorusPolynomial &test_poly, const LweCiphertext &ct,
              LweCiphertext &out, BootstrapWorkspace &ws)
{
    MORPHLING_SPAN("tfhe", "bootstrap");
    {
        MORPHLING_SPAN("tfhe", "mod_switch");
        modSwitchInto(ct, test_poly.degree(), ws.switched);
    }
    {
        MORPHLING_SPAN("tfhe", "blind_rotate");
        blindRotate(bsk, test_poly, ws.switched, ws.acc, ws);
    }
    {
        MORPHLING_SPAN("tfhe", "sample_extract");
        ws.acc.sampleExtractAtInto(0, ws.extracted);
    }
    {
        MORPHLING_SPAN("tfhe", "key_switch");
        ksk.applyInto(ws.extracted, out);
    }
}

LweCiphertext
bootstrapNoKeySwitch(const KeySet &keys, const LweCiphertext &ct,
                     const TorusPolynomial &test_poly)
{
    auto &ws = BootstrapWorkspace::forThisThread();
    modSwitchInto(ct, keys.params.polyDegree, ws.switched);
    blindRotate(keys.bsk, test_poly, ws.switched, ws.acc, ws);
    return ws.acc.sampleExtract();
}

LweCiphertext
programmableBootstrap(const KeySet &keys, const LweCiphertext &ct,
                      const std::vector<Torus32> &lut)
{
    auto &ws = BootstrapWorkspace::forThisThread();
    buildTestPolynomialInto(keys.params.polyDegree, lut, ws.testPoly);
    LweCiphertext out;
    bootstrapInto(keys.bsk, keys.ksk, ws.testPoly, ct, out, ws);
    return out;
}

LweCiphertext
signBootstrap(const KeySet &keys, const LweCiphertext &ct, Torus32 mu)
{
    const TorusPolynomial tp =
        constantTestPolynomial(keys.params.polyDegree, mu);
    const LweCiphertext extracted = bootstrapNoKeySwitch(keys, ct, tp);
    return keys.ksk.apply(extracted);
}

TorusPolynomial
buildMultiTestPolynomial(unsigned poly_degree,
                         const std::vector<std::vector<Torus32>> &luts)
{
    panic_if(luts.empty(), "need at least one LUT");
    const auto nu = static_cast<std::uint32_t>(luts.size());
    const auto space = static_cast<std::uint32_t>(luts[0].size());
    for (const auto &lut : luts)
        panic_if(lut.size() != space, "LUT sizes must match");

    const std::uint32_t slot = poly_degree / space;
    fatal_if(slot * space != poly_degree,
             "message space must divide N");
    const std::uint32_t spacing = slot / nu;
    fatal_if(spacing * nu != slot || spacing < 2,
             "cannot pack ", nu, " LUTs of ", space,
             " entries into N = ", poly_degree);

    TorusPolynomial tp(poly_degree);
    for (unsigned j = 0; j < poly_degree; ++j) {
        // Decompose j (shifted by half a sub-slot so noise rounds to
        // the nearest function copy) into message slot, function
        // index, and jitter.
        const std::uint32_t t = j + spacing / 2;
        const std::uint32_t m = t / slot;
        const std::uint32_t func = (t % slot) / spacing;
        // The top wrap region belongs to message 0 negated
        // (X^N = -1), exactly as in the single-LUT builder.
        tp[j] = m < space ? luts[func][m] : (0 - luts[func][0]);
    }
    return tp;
}

std::vector<LweCiphertext>
multiLutBootstrap(const KeySet &keys, const LweCiphertext &ct,
                  const std::vector<std::vector<Torus32>> &luts)
{
    const unsigned poly_degree = keys.params.polyDegree;
    const TorusPolynomial tp =
        buildMultiTestPolynomial(poly_degree, luts);
    const auto switched = modSwitch(ct, poly_degree);
    const GlweCiphertext acc = blindRotate(keys.bsk, tp, switched);

    const auto nu = static_cast<unsigned>(luts.size());
    const unsigned spacing =
        poly_degree / static_cast<unsigned>(luts[0].size()) / nu;
    std::vector<LweCiphertext> out;
    out.reserve(nu);
    for (unsigned i = 0; i < nu; ++i) {
        // One cheap extraction per function; the expensive blind
        // rotation is shared.
        out.push_back(
            keys.ksk.apply(acc.sampleExtractAt(i * spacing)));
    }
    return out;
}

} // namespace morphling::tfhe
