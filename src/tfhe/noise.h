/**
 * @file
 * Analytic noise tracking for TFHE operations.
 *
 * Every homomorphic operation grows the ciphertext noise; bootstrapping
 * exists to reset it (Section II-B). This module implements the
 * standard variance formulas so parameter choices can be audited and
 * the measured noise of this implementation can be compared against
 * prediction (tests/test_noise.cc does exactly that):
 *
 *  - external product: each of the n CMux steps adds
 *      (k+1) l_b N (beta/2)^2 sigma_bsk^2      (BSK noise term)
 *    + (1 + kN) eps^2 / 12, eps = beta^{-l_b}  (decomposition term)
 *  - modulus switching: rounding to 2N adds n/2 * (1/(2N))^2 / 12
 *    .. times the key weight; we use the binary-key expectation.
 *  - key switching: kN l_k E[d^2] sigma_ksk^2 plus the rounding of the
 *    discarded tail.
 *
 * Variances are in torus^2 units (stddevs as torus fractions).
 */

#ifndef MORPHLING_TFHE_NOISE_H
#define MORPHLING_TFHE_NOISE_H

#include <cstdint>

#include "tfhe/keyset.h"
#include "tfhe/params.h"

namespace morphling::tfhe {

/** Predicted noise variances for one parameter set. */
struct NoiseModel
{
    explicit NoiseModel(const TfheParams &params);

    /** Variance of fresh LWE encryption noise. */
    double freshLweVariance() const;

    /** Variance added by one external product (CMux step). */
    double externalProductVariance() const;

    /** Variance of the accumulator after a full blind rotation
     *  (n external products on a noiseless test polynomial). */
    double blindRotationVariance() const;

    /** Variance added by key switching. */
    double keySwitchVariance() const;

    /** Variance of a complete programmable bootstrapping output
     *  (blind rotation + key switch; the refreshed noise level). */
    double bootstrapOutputVariance() const;

    /**
     * Variance of the *phase error in the 2N domain* induced by
     * modulus switching, expressed on the torus: the input-side error
     * that must stay below half a LUT slot.
     */
    double modSwitchVariance() const;

    /**
     * Failure-probability proxy: the number of standard deviations
     * between the decision boundary and the total input-side noise for
     * a LUT over `space` messages with one padding bit. Larger is
     * safer; > 6 is practically error-free.
     */
    double slotSigmas(std::uint32_t space, double input_variance) const;

  private:
    const TfheParams &params_;
};

/**
 * Measure the phase-error standard deviation of `samples` fresh
 * bootstraps (identity LUT over `space` messages): the empirical
 * counterpart of bootstrapOutputVariance().
 */
double measureBootstrapNoiseStd(const KeySet &keys, std::uint32_t space,
                                unsigned samples, Rng &rng);

/** Measure the phase-error stddev of fresh LWE encryptions. */
double measureFreshNoiseStd(const KeySet &keys, unsigned samples,
                            Rng &rng);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_NOISE_H
