#include "keyset.h"

#include "common/logging.h"

namespace morphling::tfhe {

BootstrapKey
BootstrapKey::generate(const LweKey &lwe_key, const GlweKey &glwe_key,
                       Rng &rng)
{
    const auto &params = glwe_key.params();
    BootstrapKey out;
    out.entries_.reserve(lwe_key.dimension());
    for (unsigned i = 0; i < lwe_key.dimension(); ++i) {
        GgswCiphertext ggsw = GgswCiphertext::encrypt(
            glwe_key, lwe_key.bits()[i], params.glweNoiseStd, rng);
        out.entries_.push_back(FourierGgsw::fromGgsw(ggsw));
    }
    return out;
}

BootstrapKey
BootstrapKey::fromEntries(std::vector<FourierGgsw> entries)
{
    BootstrapKey out;
    out.entries_ = std::move(entries);
    return out;
}

KeySwitchKey
KeySwitchKey::generate(const LweKey &source_key, const LweKey &target_key,
                       Rng &rng)
{
    const auto &params = target_key.params();
    KeySwitchKey out;
    out.sourceDim_ = source_key.dimension();
    out.targetDim_ = target_key.dimension();
    out.levels_ = params.kskLevels;
    out.baseBits_ = params.kskBaseBits;
    out.entries_.reserve(static_cast<std::size_t>(out.sourceDim_) *
                         out.levels_);
    for (unsigned i = 0; i < out.sourceDim_; ++i) {
        for (unsigned j = 0; j < out.levels_; ++j) {
            // KSK_(i,j) encrypts s'_i * q / base^(j+1).
            const Torus32 message = static_cast<Torus32>(
                static_cast<std::int64_t>(source_key.bits()[i])
                << (32 - (j + 1) * out.baseBits_));
            out.entries_.push_back(LweCiphertext::encrypt(
                target_key, message, params.lweNoiseStd, rng));
        }
    }
    return out;
}

KeySwitchKey
KeySwitchKey::fromEntries(unsigned source_dim, unsigned target_dim,
                          unsigned levels, unsigned base_bits,
                          std::vector<LweCiphertext> entries)
{
    KeySwitchKey out;
    out.sourceDim_ = source_dim;
    out.targetDim_ = target_dim;
    out.levels_ = levels;
    out.baseBits_ = base_bits;
    out.entries_ = std::move(entries);
    panic_if(out.entries_.size() !=
                 static_cast<std::size_t>(source_dim) * levels,
             "KSK entry count mismatch");
    return out;
}

LweCiphertext
KeySwitchKey::apply(const LweCiphertext &ct) const
{
    LweCiphertext out(targetDim_);
    applyInto(ct, out);
    return out;
}

void
KeySwitchKey::applyInto(const LweCiphertext &ct, LweCiphertext &out) const
{
    panic_if(ct.dimension() != sourceDim_,
             "key switch expects dimension ", sourceDim_, ", got ",
             ct.dimension());

    // c'' = (0..0, b') - sum_{i,j} digit_{i,j} * KSK_(i,j), with each
    // extracted mask a'_i decomposed into l_k unsigned digits (with a
    // rounding offset on the discarded tail).
    out.raw().assign(static_cast<std::size_t>(targetDim_) + 1, 0);
    out.body() = ct.body();
    const std::uint32_t mask = (1u << baseBits_) - 1;
    const unsigned tail_bits = 32 - levels_ * baseBits_;
    const Torus32 round_offset =
        tail_bits > 0 ? (Torus32{1} << (tail_bits - 1)) : 0;

    for (unsigned i = 0; i < sourceDim_; ++i) {
        const Torus32 a = ct.mask(i) + round_offset;
        for (unsigned j = 0; j < levels_; ++j) {
            const std::uint32_t digit =
                (a >> (32 - (j + 1) * baseBits_)) & mask;
            if (digit == 0)
                continue;
            const auto &ksk = at(i, j);
            const Torus32 *__restrict kw = ksk.raw().data();
            Torus32 *__restrict ow = out.raw().data();
            for (unsigned w = 0; w <= targetDim_; ++w)
                ow[w] -= digit * kw[w];
        }
    }
}

KeySet
KeySet::generate(const TfheParams &params, Rng &rng)
{
    KeySet ks;
    ks.params = params;
    ks.lweKey = LweKey::generate(params, rng);
    ks.glweKey = GlweKey::generate(params, rng);
    ks.extractedKey = ks.glweKey.extractLweKey();
    ks.bsk = BootstrapKey::generate(ks.lweKey, ks.glweKey, rng);
    ks.ksk = KeySwitchKey::generate(ks.extractedKey, ks.lweKey, rng);
    return ks;
}

} // namespace morphling::tfhe
