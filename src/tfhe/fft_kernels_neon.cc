/**
 * @file
 * NEON tier (W = 2 doubles) of the batched negacyclic FFT kernels for
 * AArch64. Double-precision NEON arithmetic is part of the baseline
 * AArch64 profile, so no runtime feature probe is needed beyond being
 * on the architecture. Degrades to a nullptr factory elsewhere.
 *
 * No vfma intrinsics — see the bit-identity contract in
 * fft_kernels_impl.h (the TU is additionally compiled with
 * -ffp-contract=off so the compiler cannot contract the mul/add pairs
 * either).
 */

#include "tfhe/fft_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "tfhe/fft_kernels_impl.h"

namespace morphling::tfhe::detail {
namespace {

struct NeonTraits
{
    static constexpr unsigned kWidth = 2;
    using Vec = float64x2_t;

    static Vec load(const double *p) { return vld1q_f64(p); }
    static void store(double *p, Vec v) { vst1q_f64(p, v); }
    static Vec splat(double x) { return vdupq_n_f64(x); }
    static Vec add(Vec a, Vec b) { return vaddq_f64(a, b); }
    static Vec sub(Vec a, Vec b) { return vsubq_f64(a, b); }
    static Vec mul(Vec a, Vec b) { return vmulq_f64(a, b); }
    static Vec cvtInt32(const std::int32_t *p)
    {
        return vcvtq_f64_s64(vmovl_s32(vld1_s32(p)));
    }

    /** 2x2 in-register transpose. */
    static void transpose(Vec *r)
    {
        const float64x2_t t0 = vzip1q_f64(r[0], r[1]);
        const float64x2_t t1 = vzip2q_f64(r[0], r[1]);
        r[0] = t0;
        r[1] = t1;
    }
};

} // namespace

const BatchKernels *
neonBatchKernels()
{
    static const BatchKernels k = makeBatchKernels<NeonTraits>("neon");
    return &k;
}

} // namespace morphling::tfhe::detail

#else // !__aarch64__

namespace morphling::tfhe::detail {

const BatchKernels *
neonBatchKernels()
{
    return nullptr;
}

} // namespace morphling::tfhe::detail

#endif
