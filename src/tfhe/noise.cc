#include "noise.h"

#include <cmath>

#include "common/logging.h"
#include "tfhe/bootstrap.h"
#include "tfhe/encoding.h"

namespace morphling::tfhe {

NoiseModel::NoiseModel(const TfheParams &params) : params_(params) {}

double
NoiseModel::freshLweVariance() const
{
    return params_.lweNoiseStd * params_.lweNoiseStd;
}

double
NoiseModel::externalProductVariance() const
{
    const double n_poly = params_.polyDegree;
    const double kp1 = params_.glweDimension + 1;
    const double lb = params_.bskLevels;
    const double beta = std::pow(2.0, params_.bskBaseBits);
    const double sigma_bsk = params_.glweNoiseStd;

    // BSK noise amplified by the decomposed digits: the digit vector
    // has (k+1) l_b polynomials of N coefficients bounded by beta/2
    // (variance beta^2/12 for centered digits), each meeting one fresh
    // BSK noise polynomial.
    const double bsk_term = kp1 * lb * n_poly * (beta * beta / 12.0) *
                            sigma_bsk * sigma_bsk;

    // Decomposition truncation: reconstruction error eps per
    // coefficient meets the (binary) key; 1 + kN terms of eps^2/12
    // with eps = 2^-(l_b * log2 beta).
    const double eps = std::pow(2.0, -static_cast<double>(
                                         params_.bskLevels *
                                         params_.bskBaseBits));
    const double kn = params_.glweDimension * n_poly;
    const double decomp_term = (1.0 + kn / 2.0) * eps * eps / 12.0;

    return bsk_term + decomp_term;
}

double
NoiseModel::blindRotationVariance() const
{
    return params_.lweDimension * externalProductVariance();
}

double
NoiseModel::keySwitchVariance() const
{
    const double kn = static_cast<double>(params_.extractedLweDimension());
    const double lk = params_.kskLevels;
    const double base = std::pow(2.0, params_.kskBaseBits);
    const double sigma = params_.lweNoiseStd;

    // Unsigned digits uniform in [0, base): E[d^2] = base^2/3.
    const double ksk_term = kn * lk * (base * base / 3.0) * sigma *
                            sigma;
    // Rounding of the discarded tail: eps = 2^-(l_k b) per mask, half
    // the masks meet a key bit of 1.
    const double eps = std::pow(
        2.0, -static_cast<double>(params_.kskLevels *
                                  params_.kskBaseBits));
    const double tail_term = kn / 2.0 * eps * eps / 12.0;
    return ksk_term + tail_term;
}

double
NoiseModel::bootstrapOutputVariance() const
{
    return blindRotationVariance() + keySwitchVariance();
}

double
NoiseModel::modSwitchVariance() const
{
    // Each of the n masks is rounded to a grid of step 1/(2N); the
    // rounding error (variance step^2/12) lands on the phase for the
    // ~n/2 positions where the key bit is 1, plus the body's own
    // rounding.
    const double step = 1.0 / (2.0 * params_.polyDegree);
    const double per_term = step * step / 12.0;
    return (params_.lweDimension / 2.0 + 1.0) * per_term;
}

double
NoiseModel::slotSigmas(std::uint32_t space, double input_variance) const
{
    // Half-slot margin of a padded LUT over `space` messages: 1/(4p).
    const double margin = 1.0 / (4.0 * space);
    return margin / std::sqrt(input_variance + modSwitchVariance());
}

double
measureBootstrapNoiseStd(const KeySet &keys, std::uint32_t space,
                         unsigned samples, Rng &rng)
{
    panic_if(samples == 0, "need samples");
    const auto lut = makePaddedLut(space, [](std::uint32_t m) {
        return m;
    });
    double sum_sq = 0;
    for (unsigned s = 0; s < samples; ++s) {
        const std::uint32_t m =
            static_cast<std::uint32_t>(rng.nextBelow(space));
        const auto ct = encryptPadded(keys, m, space, rng);
        const auto out = programmableBootstrap(keys, ct, lut);
        const double err = torusDistance(out.phase(keys.lweKey),
                                         encodePadded(m, space));
        sum_sq += err * err;
    }
    return std::sqrt(sum_sq / samples);
}

double
measureFreshNoiseStd(const KeySet &keys, unsigned samples, Rng &rng)
{
    panic_if(samples == 0, "need samples");
    double sum_sq = 0;
    for (unsigned s = 0; s < samples; ++s) {
        const Torus32 mu = rng.nextU32();
        const auto ct = LweCiphertext::encrypt(
            keys.lweKey, mu, keys.params.lweNoiseStd, rng);
        const double err = torusDistance(ct.phase(keys.lweKey), mu);
        sum_sq += err * err;
    }
    return std::sqrt(sum_sq / samples);
}

} // namespace morphling::tfhe
