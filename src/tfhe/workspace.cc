#include "workspace.h"

namespace morphling::tfhe {

void
BootstrapWorkspace::ensure(unsigned glwe_dim, unsigned poly_degree,
                           unsigned levels, unsigned base_bits)
{
    if (plan.baseBits != base_bits || plan.levels != levels)
        plan = makeGadgetPlan(base_bits, levels);

    const bool same_ring =
        glweDim_ == glwe_dim && polyDegree_ == poly_degree;
    if (same_ring && digits.size() == levels)
        return;

    digits.resize(levels);
    for (auto &p : digits) {
        if (p.degree() != poly_degree)
            p = IntPolynomial(poly_degree);
    }

    const std::size_t rows =
        static_cast<std::size_t>(glwe_dim + 1) * levels;
    digitsF.resize(rows);
    for (auto &fp : digitsF) {
        if (fp.ringDegree() != poly_degree)
            fp = FourierPolynomial(poly_degree);
    }

    if (accF.ringDegree() != poly_degree)
        accF = FourierPolynomial(poly_degree);
    if (diff.dimension() != glwe_dim || !same_ring)
        diff = GlweCiphertext(glwe_dim, poly_degree);
    if (prod.degree() != poly_degree)
        prod = TorusPolynomial(poly_degree);

    glweDim_ = glwe_dim;
    polyDegree_ = poly_degree;
}

BootstrapWorkspace &
BootstrapWorkspace::forThisThread()
{
    thread_local BootstrapWorkspace ws;
    return ws;
}

} // namespace morphling::tfhe
