#include "workspace.h"

namespace morphling::tfhe {

void
BootstrapWorkspace::ensure(unsigned glwe_dim, unsigned poly_degree,
                           unsigned levels, unsigned base_bits)
{
    if (plan.baseBits != base_bits || plan.levels != levels)
        plan = makeGadgetPlan(base_bits, levels);

    const std::size_t rows =
        static_cast<std::size_t>(glwe_dim + 1) * levels;
    const bool same_ring =
        glweDim_ == glwe_dim && polyDegree_ == poly_degree;
    if (same_ring && digits.size() == rows)
        return;

    // One digit polynomial and one transform per GGSW row, so a whole
    // external product's (k+1)*l_b forward FFTs can run as one batched
    // call over them.
    digits.resize(rows);
    for (auto &p : digits) {
        if (p.degree() != poly_degree)
            p = IntPolynomial(poly_degree);
    }
    digitsF.resize(rows);
    for (auto &fp : digitsF) {
        if (fp.ringDegree() != poly_degree)
            fp = FourierPolynomial(poly_degree);
    }

    // One accumulator and one inverse output per GLWE component, so the
    // k+1 inverse FFTs batch the same way.
    accF.resize(glwe_dim + 1);
    for (auto &fp : accF) {
        if (fp.ringDegree() != poly_degree)
            fp = FourierPolynomial(poly_degree);
    }
    if (diff.dimension() != glwe_dim || !same_ring)
        diff = GlweCiphertext(glwe_dim, poly_degree);
    prods.resize(glwe_dim + 1);
    for (auto &p : prods) {
        if (p.degree() != poly_degree)
            p = TorusPolynomial(poly_degree);
    }

    // Pointer views for the batched FFT calls: targets are stable until
    // the next reshaping ensure().
    batchDigits.resize(rows);
    batchDigitsF.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        batchDigits[r] = &digits[r];
        batchDigitsF[r] = &digitsF[r];
    }
    batchAccF.resize(glwe_dim + 1);
    for (unsigned c = 0; c <= glwe_dim; ++c)
        batchAccF[c] = &accF[c];
    batchTorus.resize(glwe_dim + 1);

    glweDim_ = glwe_dim;
    polyDegree_ = poly_degree;
}

BootstrapWorkspace &
BootstrapWorkspace::forThisThread()
{
    thread_local BootstrapWorkspace ws;
    return ws;
}

} // namespace morphling::tfhe
