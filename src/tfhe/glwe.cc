#include "glwe.h"

#include "common/logging.h"
#include "tfhe/fft.h"

namespace morphling::tfhe {

GlweKey::GlweKey(const TfheParams &params,
                 std::vector<IntPolynomial> polys)
    : params_(&params), polys_(std::move(polys))
{
    panic_if(polys_.size() != params.glweDimension,
             "GLWE key needs k polynomials");
}

GlweKey
GlweKey::generate(const TfheParams &params, Rng &rng)
{
    std::vector<IntPolynomial> polys;
    polys.reserve(params.glweDimension);
    for (unsigned i = 0; i < params.glweDimension; ++i) {
        IntPolynomial p(params.polyDegree);
        for (unsigned j = 0; j < params.polyDegree; ++j)
            p[j] = rng.nextBit() ? 1 : 0;
        polys.push_back(std::move(p));
    }
    return GlweKey(params, std::move(polys));
}

LweKey
GlweKey::extractLweKey() const
{
    std::vector<std::int32_t> bits;
    bits.reserve(static_cast<std::size_t>(dimension()) *
                 params().polyDegree);
    for (unsigned i = 0; i < dimension(); ++i) {
        for (unsigned j = 0; j < params().polyDegree; ++j)
            bits.push_back(polys_[i][j]);
    }
    return LweKey(params(), std::move(bits));
}

GlweCiphertext::GlweCiphertext(unsigned glwe_dimension,
                               unsigned poly_degree)
    : polys_(glwe_dimension + 1, TorusPolynomial(poly_degree))
{
}

GlweCiphertext
GlweCiphertext::trivial(unsigned glwe_dimension, TorusPolynomial message)
{
    GlweCiphertext ct(glwe_dimension, message.degree());
    ct.body() = std::move(message);
    return ct;
}

GlweCiphertext
GlweCiphertext::encrypt(const GlweKey &key, const TorusPolynomial &message,
                        double stddev, Rng &rng)
{
    const auto &params = key.params();
    const unsigned n = params.polyDegree;
    panic_if(message.degree() != n, "message degree mismatch");

    GlweCiphertext ct(key.dimension(), n);
    // Body starts as message + noise; the mask products are added via
    // the FFT path (exact for binary keys: products of 0/1 by torus).
    for (unsigned j = 0; j < n; ++j)
        ct.body()[j] = message[j] + gaussianTorus32(rng, stddev);

    const auto &fft = NegacyclicFft::forDegree(n);
    FourierPolynomial mask_f(n), key_f(n), acc_f(n);
    TorusPolynomial prod(n);
    for (unsigned i = 0; i < key.dimension(); ++i) {
        auto &mask = ct.component(i);
        for (unsigned j = 0; j < n; ++j)
            mask[j] = rng.nextU32();
        fft.forward(mask, mask_f);
        fft.forward(key.poly(i), key_f);
        acc_f.clear();
        acc_f.mulAddAssign(key_f, mask_f);
        fft.inverse(acc_f, prod);
        ct.body().addAssign(prod);
    }
    return ct;
}

TorusPolynomial
GlweCiphertext::phase(const GlweKey &key) const
{
    panic_if(key.dimension() != dimension(), "key dimension mismatch");
    const unsigned n = polyDegree();
    const auto &fft = NegacyclicFft::forDegree(n);

    TorusPolynomial result = body();
    FourierPolynomial mask_f(n), key_f(n), acc_f(n);
    TorusPolynomial prod(n);
    for (unsigned i = 0; i < dimension(); ++i) {
        fft.forward(component(i), mask_f);
        fft.forward(key.poly(i), key_f);
        acc_f.clear();
        acc_f.mulAddAssign(key_f, mask_f);
        fft.inverse(acc_f, prod);
        result.subAssign(prod);
    }
    return result;
}

void
GlweCiphertext::addAssign(const GlweCiphertext &other)
{
    panic_if(polys_.size() != other.polys_.size(),
             "dimension mismatch in GLWE add");
    for (std::size_t i = 0; i < polys_.size(); ++i)
        polys_[i].addAssign(other.polys_[i]);
}

void
GlweCiphertext::subAssign(const GlweCiphertext &other)
{
    panic_if(polys_.size() != other.polys_.size(),
             "dimension mismatch in GLWE sub");
    for (std::size_t i = 0; i < polys_.size(); ++i)
        polys_[i].subAssign(other.polys_[i]);
}

GlweCiphertext
GlweCiphertext::mulByXPower(unsigned power) const
{
    GlweCiphertext out(dimension(), polyDegree());
    for (std::size_t i = 0; i < polys_.size(); ++i)
        polys_[i].mulByXPowerInto(power, out.polys_[i]);
    return out;
}

void
GlweCiphertext::mulByXPowerInPlace(unsigned power,
                                   TorusPolynomial &scratch)
{
    for (auto &poly : polys_)
        poly.mulByXPowerInPlace(power, scratch);
}

LweCiphertext
GlweCiphertext::sampleExtract() const
{
    return sampleExtractAt(0);
}

LweCiphertext
GlweCiphertext::sampleExtractAt(unsigned index) const
{
    LweCiphertext out(dimension() * polyDegree());
    sampleExtractAtInto(index, out);
    return out;
}

void
GlweCiphertext::sampleExtractAtInto(unsigned index,
                                    LweCiphertext &out) const
{
    const unsigned n = polyDegree();
    const unsigned k = dimension();
    panic_if(index >= n, "extraction index out of range");

    if (out.raw().size() != static_cast<std::size_t>(k) * n + 1)
        out.raw().resize(static_cast<std::size_t>(k) * n + 1);
    // Coefficient `t` of A_i * S_i mod X^N + 1 is
    //   sum_{j <= t} A_i[t-j] S_i[j] - sum_{j > t} A_i[N+t-j] S_i[j],
    // so the mask aligned with key bit S_i[j] is A_i[t-j] for j <= t
    // and -A_i[N+t-j] above.
    for (unsigned i = 0; i < k; ++i) {
        const auto &mask = component(i);
        for (unsigned j = 0; j < n; ++j) {
            out.mask(i * n + j) =
                j <= index ? mask[index - j]
                           : (0 - mask[n + index - j]);
        }
    }
    out.body() = body()[index];
}

} // namespace morphling::tfhe
