#include "encoding.h"

#include "common/logging.h"

namespace morphling::tfhe {

Torus32
boolMu()
{
    return doubleToTorus32(0.125);
}

LweCiphertext
encryptBit(const KeySet &keys, bool bit, Rng &rng)
{
    const Torus32 mu = bit ? boolMu() : (0 - boolMu());
    return LweCiphertext::encrypt(keys.lweKey, mu,
                                  keys.params.lweNoiseStd, rng);
}

bool
decryptBit(const KeySet &keys, const LweCiphertext &ct)
{
    return static_cast<std::int32_t>(ct.phase(keys.lweKey)) > 0;
}

LweCiphertext
trivialBit(const KeySet &keys, bool bit)
{
    const Torus32 mu = bit ? boolMu() : (0 - boolMu());
    return LweCiphertext::trivial(keys.params.lweDimension, mu);
}

const char *
boolGateName(BoolGate gate)
{
    switch (gate) {
    case BoolGate::And:
        return "and";
    case BoolGate::Or:
        return "or";
    case BoolGate::Xor:
        return "xor";
    case BoolGate::Nand:
        return "nand";
    case BoolGate::Nor:
        return "nor";
    case BoolGate::Xnor:
        return "xnor";
    }
    panic("unknown BoolGate");
}

LweCiphertext
gateLinear(BoolGate gate, const LweCiphertext &a, const LweCiphertext &b)
{
    switch (gate) {
    case BoolGate::Nand: {
        // (0,..,1/8) - a - b: positive phase unless both inputs are
        // true.
        LweCiphertext lin =
            LweCiphertext::trivial(a.dimension(), boolMu());
        lin.subAssign(a);
        lin.subAssign(b);
        return lin;
    }
    case BoolGate::And: {
        LweCiphertext lin =
            LweCiphertext::trivial(a.dimension(), 0 - boolMu());
        lin.addAssign(a);
        lin.addAssign(b);
        return lin;
    }
    case BoolGate::Or: {
        LweCiphertext lin =
            LweCiphertext::trivial(a.dimension(), boolMu());
        lin.addAssign(a);
        lin.addAssign(b);
        return lin;
    }
    case BoolGate::Nor: {
        LweCiphertext lin =
            LweCiphertext::trivial(a.dimension(), 0 - boolMu());
        lin.subAssign(a);
        lin.subAssign(b);
        return lin;
    }
    case BoolGate::Xor: {
        // 2(a + b) + 1/4: lands at +1/4 when a != b, at -1/4
        // otherwise.
        LweCiphertext lin = a;
        lin.addAssign(b);
        lin.scaleAssign(2);
        lin.addPlain(doubleToTorus32(0.25));
        return lin;
    }
    case BoolGate::Xnor: {
        LweCiphertext lin = a;
        lin.addAssign(b);
        lin.scaleAssign(-2);
        lin.addPlain(0 - doubleToTorus32(0.25));
        return lin;
    }
    }
    panic("unknown BoolGate");
}

LweCiphertext
gateApply(const KeySet &keys, BoolGate gate, const LweCiphertext &a,
          const LweCiphertext &b)
{
    return signBootstrap(keys, gateLinear(gate, a, b), boolMu());
}

LweCiphertext
gateNand(const KeySet &keys, const LweCiphertext &a, const LweCiphertext &b)
{
    return gateApply(keys, BoolGate::Nand, a, b);
}

LweCiphertext
gateAnd(const KeySet &keys, const LweCiphertext &a, const LweCiphertext &b)
{
    return gateApply(keys, BoolGate::And, a, b);
}

LweCiphertext
gateOr(const KeySet &keys, const LweCiphertext &a, const LweCiphertext &b)
{
    return gateApply(keys, BoolGate::Or, a, b);
}

LweCiphertext
gateNor(const KeySet &keys, const LweCiphertext &a, const LweCiphertext &b)
{
    return gateApply(keys, BoolGate::Nor, a, b);
}

LweCiphertext
gateXor(const KeySet &keys, const LweCiphertext &a, const LweCiphertext &b)
{
    return gateApply(keys, BoolGate::Xor, a, b);
}

LweCiphertext
gateXnor(const KeySet &keys, const LweCiphertext &a, const LweCiphertext &b)
{
    return gateApply(keys, BoolGate::Xnor, a, b);
}

LweCiphertext
gateNot(const LweCiphertext &a)
{
    LweCiphertext out = a;
    out.negate();
    return out;
}

LweCiphertext
gateMux(const KeySet &keys, const LweCiphertext &select,
        const LweCiphertext &on_true, const LweCiphertext &on_false)
{
    const LweCiphertext picked_true = gateAnd(keys, select, on_true);
    const LweCiphertext picked_false =
        gateAnd(keys, gateNot(select), on_false);
    return gateOr(keys, picked_true, picked_false);
}

Torus32
encodePadded(std::uint32_t message, std::uint32_t space)
{
    panic_if(message >= space, "padded message ", message,
             " out of range [0, ", space, ")");
    return encodeMessage(message, 2 * space);
}

LweCiphertext
encryptPadded(const KeySet &keys, std::uint32_t message,
              std::uint32_t space, Rng &rng)
{
    return LweCiphertext::encrypt(keys.lweKey,
                                  encodePadded(message, space),
                                  keys.params.lweNoiseStd, rng);
}

std::uint32_t
decryptPadded(const KeySet &keys, const LweCiphertext &ct,
              std::uint32_t space)
{
    return lweDecrypt(keys.lweKey, ct, 2 * space);
}

std::vector<Torus32>
makePaddedLut(std::uint32_t space,
              const std::function<std::uint32_t(std::uint32_t)> &f)
{
    std::vector<Torus32> lut(space);
    for (std::uint32_t m = 0; m < space; ++m)
        lut[m] = encodePadded(f(m) % space, space);
    return lut;
}

std::vector<Torus32>
makeReluLut(std::uint32_t space)
{
    return makePaddedLut(space, [space](std::uint32_t m) {
        // Values in [space/2, space) represent negatives in two's
        // complement style; ReLU clamps them to zero.
        return m < space / 2 ? m : 0u;
    });
}

} // namespace morphling::tfhe
