/**
 * @file
 * The discretized torus T_q with q = 2^32.
 *
 * TFHE ciphertext elements live on the real torus T = R/Z. Following the
 * reference implementations (TFHE-lib, Concrete) and the paper's Section
 * II-A, we represent a torus element x in [0,1) by the 32-bit integer
 * round(x * 2^32): all torus additions become wrapping uint32 additions
 * and scaling by an integer becomes wrapping multiplication. The paper's
 * hardware uses exactly this 32-bit fixed-point datapath.
 */

#ifndef MORPHLING_TFHE_TORUS_H
#define MORPHLING_TFHE_TORUS_H

#include <cstdint>

#include "common/rng.h"

namespace morphling::tfhe {

/** A torus element x in [0,1) represented as round(x * 2^32) mod 2^32. */
using Torus32 = std::uint32_t;

/** Convert a real number (any value; only its fractional part matters)
 *  to its discretized-torus representation. */
Torus32 doubleToTorus32(double value);

/** Convert a torus element to a real in [-0.5, 0.5) (centered
 *  representative, convenient for error measurements). */
double torus32ToDouble(Torus32 value);

/**
 * Encode message m of a p-value plaintext space onto the torus: m/p.
 *
 * @param message value in [0, p)
 * @param space   plaintext modulus p
 */
Torus32 encodeMessage(std::uint32_t message, std::uint32_t space);

/**
 * Decode a (noisy) torus element back to the nearest message in [0, p).
 */
std::uint32_t decodeMessage(Torus32 value, std::uint32_t space);

/**
 * Gaussian torus noise with the given standard deviation (expressed as a
 * fraction of the torus, e.g. 2^-25).
 */
Torus32 gaussianTorus32(Rng &rng, double stddev);

/**
 * Modulus switching of one torus element from q = 2^32 down to 2N
 * (Algorithm 1, line 1): returns round(x * 2N / q) in [0, 2N).
 *
 * @param log2_two_n log2(2N); must be <= 32
 */
std::uint32_t modSwitchTorus32(Torus32 value, unsigned log2_two_n);

/**
 * Distance between two torus elements along the shorter arc, in [0, 0.5].
 * Used by noise-measurement tests.
 */
double torusDistance(Torus32 a, Torus32 b);

} // namespace morphling::tfhe

#endif // MORPHLING_TFHE_TORUS_H
