#include "table.h"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "logging.h"

namespace morphling {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "a table needs at least one column");
}

Table::Table(std::initializer_list<std::string> headers)
    : Table(std::vector<std::string>(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "row has ", cells.size(), " cells, table has ",
             headers_.size(), " columns");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&]() {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c] << " |";
        }
        os << '\n';
    };

    rule();
    line(headers_);
    rule();
    for (const auto &row : rows_) {
        if (row.empty())
            rule();
        else
            line(row);
    }
    rule();
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::fmtCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int since_sep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_sep == 3) {
            out.push_back(',');
            since_sep = 0;
        }
        out.push_back(*it);
        ++since_sep;
    }
    return {out.rbegin(), out.rend()};
}

} // namespace morphling
