/**
 * @file
 * Minimal fixed-width ASCII table printer.
 *
 * Every benchmark binary regenerates one of the paper's tables or
 * figures; this helper keeps their output uniform and diff-friendly.
 */

#ifndef MORPHLING_COMMON_TABLE_H
#define MORPHLING_COMMON_TABLE_H

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace morphling {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Set", "Latency (ms)", "Throughput (BS/s)"});
 *   t.addRow({"I", "0.11", "147615"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);
    Table(std::initializer_list<std::string> headers);

    /** Append a row; must have exactly as many cells as there are
     *  headers. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render the table, column-aligned, to the given stream. */
    void print(std::ostream &os) const;

    /** Render the table to a string (used by tests). */
    std::string toString() const;

    std::size_t numRows() const { return rows_.size(); }

    /** Format helper: fixed-precision double -> string. */
    static std::string fmt(double value, int precision = 2);

    /** Format helper: integer with thousands separators. */
    static std::string fmtCount(std::uint64_t value);

  private:
    std::vector<std::string> headers_;
    // A row with zero cells encodes a separator line.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace morphling

#endif // MORPHLING_COMMON_TABLE_H
