#include "rng.h"

#include "logging.h"

namespace morphling {

namespace {

/** splitmix64: seed expander recommended by the xoshiro authors. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    panic_if(bound == 0, "nextBelow(0) is ill-defined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit);
    return draw % bound;
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian()
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    spareGaussian_ = radius * std::sin(angle);
    haveSpareGaussian_ = true;
    return radius * std::cos(angle);
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace morphling
