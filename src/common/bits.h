/**
 * @file
 * Small bit-manipulation helpers shared by the TFHE library (gadget
 * decomposition, modulus switching) and the simulator (alignment,
 * sizing).
 */

#ifndef MORPHLING_COMMON_BITS_H
#define MORPHLING_COMMON_BITS_H

#include <cstdint>
#include <type_traits>

namespace morphling {

/** True iff x is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x > 0. */
constexpr unsigned
log2Floor(std::uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** ceil(log2(x)) for x > 0. */
constexpr unsigned
log2Ceil(std::uint64_t x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

/** Integer ceiling division for non-negative operands. */
template <typename T>
constexpr T
divCeil(T num, T den)
{
    static_assert(std::is_integral_v<T>);
    return (num + den - 1) / den;
}

/** Round x up to the next multiple of align (align > 0). */
template <typename T>
constexpr T
roundUp(T x, T align)
{
    return divCeil(x, align) * align;
}

/**
 * Extract the bit field [lo, lo+width) from x.
 *
 * width == 64 returns x >> lo with no masking surprises.
 */
constexpr std::uint64_t
bitField(std::uint64_t x, unsigned lo, unsigned width)
{
    const std::uint64_t shifted = x >> lo;
    return width >= 64 ? shifted : shifted & ((std::uint64_t{1} << width) - 1);
}

} // namespace morphling

#endif // MORPHLING_COMMON_BITS_H
