/**
 * @file
 * Cache-line-aligned allocation for SIMD-facing buffers.
 *
 * The batched negacyclic FFT kernels (src/tfhe/fft_kernels*.cc) stream
 * structure-of-arrays double buffers with 256/512-bit vector loads.
 * Guaranteeing 64-byte alignment keeps every such buffer cache-line
 * aligned and lets the kernels assume vector accesses never straddle a
 * line; tests/test_workspace.cc asserts the guarantee on the real
 * FourierPolynomial / workspace storage.
 *
 * Allocation goes through the aligned global operator new so that the
 * allocation-counting hooks tests install (and any user replacement)
 * still observe every hot-path allocation.
 */

#ifndef MORPHLING_COMMON_ALIGNED_H
#define MORPHLING_COMMON_ALIGNED_H

#include <cstddef>
#include <new>
#include <vector>

namespace morphling {

/** Alignment (bytes) of every SIMD-facing SoA buffer: one cache line,
 *  and the widest vector register (AVX-512) exactly. */
inline constexpr std::size_t kSimdAlignment = 64;

/**
 * Minimal std::allocator replacement returning storage aligned to
 * `Align` bytes. Stateless: all instances compare equal.
 */
template <typename T, std::size_t Align = kSimdAlignment>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T), "alignment below natural");
    static_assert((Align & (Align - 1)) == 0, "alignment not a power of 2");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** A std::vector whose data() is 64-byte aligned. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/** True iff p satisfies the SIMD buffer alignment contract. */
inline bool
isSimdAligned(const void *p)
{
    return (reinterpret_cast<std::uintptr_t>(p) % kSimdAlignment) == 0;
}

} // namespace morphling

#endif // MORPHLING_COMMON_ALIGNED_H
