#include "logging.h"

#include <atomic>

namespace morphling {

namespace {

std::atomic<std::size_t> warn_counter{0};

} // namespace

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail

std::size_t
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

} // namespace morphling
