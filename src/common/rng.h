/**
 * @file
 * Deterministic random number generation for the TFHE library and the
 * simulator.
 *
 * All randomness in the repository flows through Rng so that every test,
 * example and benchmark is reproducible from a seed. The generator is
 * xoshiro256** (public-domain algorithm by Blackman & Vigna): fast,
 * well-distributed, and trivially seedable via splitmix64.
 *
 * Cryptographic quality randomness is explicitly a non-goal: this is a
 * research artifact reproducing a hardware paper, not a production
 * cryptosystem.
 */

#ifndef MORPHLING_COMMON_RNG_H
#define MORPHLING_COMMON_RNG_H

#include <array>
#include <cmath>
#include <cstdint>

namespace morphling {

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also feed
 * <random> distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next 64 uniform random bits. */
    std::uint64_t operator()();

    /** Uniform 32-bit word (e.g., a uniform torus element). */
    std::uint32_t nextU32() { return static_cast<std::uint32_t>((*this)()); }

    /** Uniform 64-bit word. */
    std::uint64_t nextU64() { return (*this)(); }

    /** Uniform integer in [0, bound). Requires bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform bit. */
    bool nextBit() { return ((*this)() >> 63) != 0; }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /**
     * Standard normal sample (Box-Muller on uniform doubles).
     *
     * Used for the gaussian noise added during encryption.
     */
    double nextGaussian();

    /**
     * Fork an independent generator.
     *
     * The child stream is seeded from the parent's output so that two
     * forks taken at different points never collide. Handy for giving
     * each key/component its own stream while keeping one master seed.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace morphling

#endif // MORPHLING_COMMON_RNG_H
