/**
 * @file
 * Status and error reporting helpers in the spirit of gem5's logging
 * package.
 *
 * Two error functions with distinct purposes:
 *  - panic():  something happened that should never happen regardless of
 *              what the user does (an actual bug). Calls std::abort().
 *  - fatal():  the run cannot continue due to a user-visible condition
 *              (bad configuration, invalid arguments). Calls std::exit(1).
 *
 * Two status functions:
 *  - warn():   functionality may not behave as the user expects.
 *  - inform(): normal operating message, no connotation of misbehaviour.
 */

#ifndef MORPHLING_COMMON_LOGGING_H
#define MORPHLING_COMMON_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace morphling {

namespace detail {

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Number of warn() messages emitted so far (used by tests). */
std::size_t warnCount();

} // namespace morphling

/** Abort with a message: a condition that indicates a bug in this code. */
#define panic(...)                                                          \
    ::morphling::detail::panicImpl(__FILE__, __LINE__,                      \
                                   ::morphling::detail::concat(__VA_ARGS__))

/** Exit with a message: a condition caused by bad user input or config. */
#define fatal(...)                                                          \
    ::morphling::detail::fatalImpl(__FILE__, __LINE__,                      \
                                   ::morphling::detail::concat(__VA_ARGS__))

/** panic() if the given invariant does not hold. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic("panic condition (" #cond ") occurred: ", __VA_ARGS__);   \
        }                                                                   \
    } while (0)

/** fatal() if the given user-facing precondition does not hold. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal("fatal condition (" #cond ") occurred: ", __VA_ARGS__);   \
        }                                                                   \
    } while (0)

#define warn(...)                                                           \
    ::morphling::detail::warnImpl(::morphling::detail::concat(__VA_ARGS__))

#define inform(...)                                                         \
    ::morphling::detail::informImpl(::morphling::detail::concat(__VA_ARGS__))

#endif // MORPHLING_COMMON_LOGGING_H
